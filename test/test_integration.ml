(* Cross-subsystem integration properties.

   Each test here deliberately crosses module boundaries: the analyses
   derived from timestamps (orphans, predicates, frontiers) must not
   depend on WHICH exact scheme produced the vectors, recorded traces
   must survive serialization and protocol replay, and the CSP runtime,
   the network stack and the session facade must all tell one story. *)

module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Trace_io = Synts_sync.Trace_io
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Vector = Synts_clock.Vector
module Fm_sync = Synts_clock.Fm_sync
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Internal_events = Synts_core.Internal_events
module Orphan = Synts_detect.Orphan
module Predicate = Synts_detect.Predicate
module Script = Synts_net.Script
module Rendezvous = Synts_net.Rendezvous
module Session = Synts_session.Session
module Frontier = Synts_monitor.Frontier
module Validate = Synts_check.Validate
module Oracle = Synts_check.Oracle
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

module R = Synts_csp.Runtime.Make (struct
  type msg = int
end)

let qtest ?(count = 100) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* Orphan sets must be scheme-independent: online (any decomposition),
   offline, and FM vectors all encode the same order. *)
let test_orphans_scheme_independent =
  qtest ~count:150 "orphan analysis independent of the timestamp scheme"
    QCheck2.Gen.(triple Gen.computation (int_bound 100) (int_bound 8))
    (fun (c, p, s) ->
      Printf.sprintf "%s proc=%d survives=%d" (Gen.computation_print c) p s)
    (fun (c, proc_pick, survives) ->
      let g, trace = Gen.build_computation c in
      let failure = { Orphan.proc = proc_pick mod Trace.n trace; survives } in
      let by ts = Orphan.orphans trace ts failure in
      let online = by (Online.timestamp_trace (Decomposition.best g) trace) in
      let seq = by (Online.timestamp_trace (Decomposition.sequential g) trace) in
      let offline = by (Offline.timestamp_trace trace) in
      let fm = by (Fm_sync.timestamp_trace trace) in
      online = seq && seq = offline && offline = fm)

(* Predicate detection likewise. *)
let test_possibly_scheme_independent =
  qtest ~count:120 "possibly verdict independent of the timestamp scheme"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      if Trace.internal_count trace = 0 then true
      else begin
        let monitored_of ts =
          let stamps = Internal_events.of_trace_with ts trace in
          let by_proc = Hashtbl.create 8 in
          Array.iter
            (fun s ->
              let p = s.Internal_events.proc in
              Hashtbl.replace by_proc p
                (Predicate.interval_of_internal s
                :: Option.value ~default:[] (Hashtbl.find_opt by_proc p)))
            stamps;
          Hashtbl.fold (fun p ivs acc -> (p, List.rev ivs) :: acc) by_proc []
          |> List.sort compare
        in
        let verdict ts = Predicate.possibly (monitored_of ts) <> None in
        verdict (Online.timestamp_trace (Decomposition.best g) trace)
        = verdict (Offline.timestamp_trace trace)
      end)

(* Record on the CSP runtime, serialize, reload, replay over the network
   protocol, and re-analyze: one consistent story end to end. *)
let test_record_serialize_replay () =
  let g = Topology.client_server ~servers:2 ~clients:3 in
  let d = Decomposition.best g in
  let calls = 4 in
  let programs =
    Array.init 5 (fun pid ->
        if pid < 2 then
          R.Pattern.rpc_server
            ~requests:(calls * 3 / 2)
            ~handler:(fun _ v -> v + 1)
        else fun api ->
          for c = 1 to calls do
            let server = (pid + c) mod 2 in
            let reply, _ = R.Pattern.rpc_call api ~server c in
            assert (reply = c + 1)
          done)
  in
  (* Clients alternate servers; with 3 clients and 4 calls each, each
     server handles 6 requests. *)
  let live = R.run ~seed:31 ~decomposition:d ~n:5 programs in
  Alcotest.(check (list int)) "live clean" [] live.R.deadlocked;
  let live_ts = Option.get live.R.timestamps in

  (* Serialize + reload. *)
  let text = Trace_io.to_string live.R.trace in
  let reloaded =
    match Trace_io.of_string text with Ok t -> t | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "roundtrip" true
    (Trace.steps reloaded = Trace.steps live.R.trace);

  (* Replay the recorded trace against the same programs. *)
  let replayed = R.replay ~decomposition:d ~trace:reloaded programs in
  Alcotest.(check bool) "replay timestamps match" true
    (Array.for_all2 Vector.equal live_ts (Option.get replayed.R.timestamps));

  (* Run the same computation's scripts over the asynchronous network. *)
  let o = Rendezvous.run ~seed:77 ~decomposition:d (Script.of_trace reloaded) in
  Alcotest.(check (list int)) "network clean" [] o.Rendezvous.deadlocked;
  let net_ts = Option.get o.Rendezvous.timestamps in
  Alcotest.(check bool) "network exact" true
    (Validate.ok (Validate.message_timestamps o.Rendezvous.trace net_ts));

  (* Both executions realize the same partial order (fixed pairing). *)
  Alcotest.(check int) "same relation count"
    (Poset.relation_count (Message_poset.of_trace reloaded))
    (Poset.relation_count (Message_poset.of_trace o.Rendezvous.trace))

(* The session facade fed by a CSP run reproduces the runtime's stamps. *)
let test_session_mirrors_runtime () =
  let g = Topology.star 5 in
  let d = Decomposition.best g in
  let programs =
    Array.init 5 (fun pid ->
        if pid = 0 then
          R.Pattern.rpc_server ~requests:8 ~handler:(fun _ v -> -v)
        else fun api ->
          for c = 1 to 2 do
            let reply, _ = R.Pattern.rpc_call api ~server:0 (pid + c) in
            assert (reply = -(pid + c))
          done)
  in
  let o = R.run ~seed:4 ~decomposition:d ~n:5 programs in
  Alcotest.(check (list int)) "clean" [] o.R.deadlocked;
  let session = Session.of_decomposition d in
  let mirrored =
    Array.map
      (fun (m : Trace.message) ->
        match
          Session.observe session
            (Session.Message { src = m.Trace.src; dst = m.Trace.dst })
        with
        | Session.Stamped v -> v
        | Session.Deferred _ -> assert false)
      (Trace.messages o.R.trace)
  in
  Alcotest.(check bool) "stamps identical" true
    (Array.for_all2 Vector.equal mirrored (Option.get o.R.timestamps));
  (* And the frontier agrees with the poset maxima. *)
  Alcotest.(check (list int)) "frontier"
    (Poset.maximal_elements (Oracle.message_poset o.R.trace))
    (List.sort compare (List.map fst (Session.frontier session)))

(* Different decompositions at replay time still yield exact stamps. *)
let test_replay_with_other_decomposition =
  qtest ~count:80 "replay re-stamps exactly under any decomposition"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      (* Use the trace itself as the program via the net scripts: simpler,
         run Online with two decompositions and compare derived relations
         instead of actual replay (the runtime path is covered above). *)
      let d1 = Decomposition.best g in
      let d2 = Decomposition.sequential g in
      let t1 = Online.timestamp_trace d1 trace in
      let t2 = Online.timestamp_trace d2 trace in
      let k = Trace.message_count trace in
      let ok = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if i <> j && Vector.lt t1.(i) t1.(j) <> Vector.lt t2.(i) t2.(j) then
            ok := false
        done
      done;
      !ok)

(* A monitoring station receiving observations over the lossy network:
   stamped messages are forwarded asynchronously (arbitrary delays, no
   FIFO), so they arrive out of order — the session's frontier and width
   must nevertheless converge to the truth. *)
let test_out_of_order_observation =
  qtest ~count:100 "out-of-order delivery to the monitor still converges"
    QCheck2.Gen.(pair Gen.computation (int_bound 100000))
    (fun (c, s) -> Printf.sprintf "%s obs_seed=%d" (Gen.computation_print c) s)
    (fun (c, obs_seed) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let ts = Online.timestamp_trace d trace in
      (* Scramble arrival order deterministically. *)
      let order = Array.init (Array.length ts) Fun.id in
      Rng.shuffle (Rng.create obs_seed) order;
      let f = Frontier.create () in
      Array.iter (fun id -> ignore (Frontier.insert f ~id ts.(id))) order;
      Trace.message_count trace = 0
      || List.sort compare (List.map fst (Frontier.frontier f))
         = Poset.maximal_elements (Oracle.message_poset trace))

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "record -> serialize -> replay -> network"
            `Quick test_record_serialize_replay;
          Alcotest.test_case "session mirrors runtime" `Quick
            test_session_mirrors_runtime;
          test_orphans_scheme_independent;
          test_possibly_scheme_independent;
          test_replay_with_other_decomposition;
          test_out_of_order_observation;
        ] );
    ]
