module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Stamper = Synts_clock.Stamper
module Stampers = Synts_core.Stampers
module Validate = Synts_check.Validate
module Gen = Synts_test_support.Gen
module Rng = Synts_util.Rng
module Workload = Synts_workload.Workload

let qtest ?(count = 100) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- the conformance property ---------- *)

(* Every scheme behind the unified interface — the edge clock and all five
   baselines — must agree with the brute-force oracle on every pair:
   exact schemes in both directions, sound-only schemes on all ↦-related
   pairs (Validate.stamper encodes the distinction via [exact]). *)
let test_all_conform =
  qtest ~count:80 "every Stamper.S instance agrees with the oracle"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      List.for_all
        (fun (name, verdict) ->
          if Validate.ok verdict then true
          else
            QCheck2.Test.fail_reportf "%s: %a" name Validate.pp verdict)
        (Validate.stampers trace (Stampers.all g)))

(* The generic driver and the scheme-specific batch stampers must induce
   the same order — the interface is a refactor, not a reimplementation. *)
let test_driver_matches_fm =
  qtest ~count:80 "fm-sync driver matches Fm_sync.timestamp_trace"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let run = Stamper.run (Stamper.fm_sync ~n:(Graph.n g)) trace in
      let ts = Synts_clock.Fm_sync.timestamp_trace trace in
      let k = Trace.message_count trace in
      let ok = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if
            i <> j
            && run.Stamper.precedes i j
               <> Synts_clock.Vector.lt ts.(i) ts.(j)
          then ok := false
        done
      done;
      !ok)

(* ---------- driver bookkeeping ---------- *)

let fixed_trace () =
  let g = Topology.client_server ~servers:2 ~clients:6 in
  let trace =
    Workload.random (Rng.create 7) ~topology:g ~messages:40 ()
  in
  (g, trace)

let test_run_accounting () =
  let g, trace = fixed_trace () in
  let k = Trace.message_count trace in
  List.iter
    (fun ((module M : Stamper.S) as s) ->
      let run = Stamper.run s trace in
      Alcotest.(check string) "name threaded through" M.name run.Stamper.name;
      Alcotest.(check bool)
        (M.name ^ ": exact flag threaded through")
        M.exact run.Stamper.exact;
      Alcotest.(check int)
        (M.name ^ ": one stamp per message")
        k
        (Array.length run.Stamper.stamp_bytes);
      Alcotest.(check bool)
        (M.name ^ ": wire payloads accounted")
        true
        (run.Stamper.payload_bytes > 0);
      Array.iter
        (fun b ->
          Alcotest.(check bool) (M.name ^ ": stamp sizes positive") true (b > 0))
        run.Stamper.stamp_bytes)
    (Stampers.all g)

let test_scheme_roster () =
  let g, _ = fixed_trace () in
  let names =
    List.map (fun (module M : Stamper.S) -> M.name) (Stampers.all g)
  in
  Alcotest.(check int) "six schemes" 6 (List.length names);
  Alcotest.(check int) "names distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "edge clock leads the roster" true
    (match names with
    | first :: _ ->
        String.length first >= 10 && String.sub first 0 10 = "edge-clock"
    | [] -> false)

(* The paper's size claim, visible through the interface: on client-server
   topologies the edge clock's stamps stay d-sized while Fidge-Mattern's
   grow with N. *)
let test_size_separation () =
  let g = Topology.client_server ~servers:2 ~clients:30 in
  let trace = Workload.random (Rng.create 11) ~topology:g ~messages:200 () in
  let avg (r : Stamper.run) =
    Array.fold_left ( + ) 0 r.Stamper.stamp_bytes
    / max 1 (Array.length r.Stamper.stamp_bytes)
  in
  let schemes = Stampers.all g in
  let find prefix =
    List.find
      (fun (module M : Stamper.S) ->
        String.length M.name >= String.length prefix
        && String.sub M.name 0 (String.length prefix) = prefix)
      schemes
  in
  let ours = avg (Stamper.run (find "edge-clock") trace) in
  let fm = avg (Stamper.run (find "fm-sync") trace) in
  Alcotest.(check bool)
    (Printf.sprintf "edge stamps (%dB) well under FM stamps (%dB)" ours fm)
    true
    (ours * 4 <= fm)

let () =
  Alcotest.run "stamper"
    [
      ( "conformance",
        [ test_all_conform; test_driver_matches_fm ] );
      ( "driver",
        [
          Alcotest.test_case "run accounting" `Quick test_run_accounting;
          Alcotest.test_case "scheme roster" `Quick test_scheme_roster;
          Alcotest.test_case "size separation" `Quick test_size_separation;
        ] );
    ]
