module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Vector = Synts_clock.Vector
module Validate = Synts_check.Validate
module R = Synts_csp.Runtime.Make (struct
  type msg = int
end)

let run = R.run

let clean outcome =
  Alcotest.(check (list int)) "no deadlock" [] outcome.R.deadlocked;
  Alcotest.(check int) "no failures" 0 (List.length outcome.R.failures);
  outcome

(* ---------- Rendezvous semantics ---------- *)

let test_single_message () =
  let o =
    clean
      (run ~n:2
         [|
           (fun api -> ignore (api.R.send 1 42));
           (fun api ->
             let src, v, _ = api.R.recv () in
             assert (src = 0 && v = 42));
         |])
  in
  Alcotest.(check int) "one message" 1 (Trace.message_count o.R.trace);
  let m = Trace.message o.R.trace 0 in
  Alcotest.(check (pair int int)) "endpoints" (0, 1) (Trace.participants m)

let test_send_blocks_until_recv () =
  (* P0 sends then flags; P1 yields many times before receiving. If send
     did not block, P0's flag event would precede the message. *)
  let o =
    clean
      (run ~n:2
         [|
           (fun api ->
             ignore (api.R.send 1 1);
             api.R.internal ());
           (fun api ->
             for _ = 1 to 5 do
               api.R.yield ()
             done;
             ignore (api.R.recv ()));
         |])
  in
  let m = Trace.message o.R.trace 0 in
  let e = (Trace.internals o.R.trace).(0) in
  Alcotest.(check bool) "flag after rendezvous" true
    (m.Trace.pos < e.Trace.pos)

let test_recv_from_filters () =
  (* P2 insists on receiving from P1 first even though P0 offers first. *)
  let o =
    clean
      (run ~n:3
         [|
           (fun api -> ignore (api.R.send 2 100));
           (fun api ->
             for _ = 1 to 3 do
               api.R.yield ()
             done;
             ignore (api.R.send 2 200));
           (fun api ->
             let v1, _ = api.R.recv_from 1 in
             let v0, _ = api.R.recv_from 0 in
             assert (v1 = 200 && v0 = 100));
         |])
  in
  let m0 = Trace.message o.R.trace 0 in
  Alcotest.(check (pair int int)) "P1's message delivered first" (1, 2)
    (Trace.participants m0)

let test_deadlock_detected () =
  (* Two processes both sending to each other: classic rendezvous
     deadlock. *)
  let o =
    run ~n:2
      [|
        (fun api -> ignore (api.R.send 1 0));
        (fun api -> ignore (api.R.send 0 0));
      |]
  in
  Alcotest.(check (list int)) "both stuck" [ 0; 1 ] o.R.deadlocked;
  Alcotest.(check int) "nothing recorded" 0 (Trace.message_count o.R.trace)

let test_partial_deadlock () =
  let o =
    run ~n:3
      [|
        (fun api -> ignore (api.R.recv ()));
        (fun _ -> ());
        (fun _ -> ());
      |]
  in
  Alcotest.(check (list int)) "only P0 stuck" [ 0 ] o.R.deadlocked

let test_failure_capture () =
  let o =
    run ~n:2 [| (fun _ -> failwith "boom"); (fun _ -> ()) |]
  in
  (match o.R.failures with
  | [ (0, Failure msg) ] when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected the fiber failure to be captured");
  Alcotest.(check (list int)) "no deadlock" [] o.R.deadlocked

let test_bad_destination () =
  let o = run ~n:2 [| (fun api -> ignore (api.R.send 5 0)); (fun _ -> ()) |] in
  match o.R.failures with
  | [ (0, Invalid_argument _) ] -> ()
  | _ -> Alcotest.fail "expected invalid destination failure"

let test_step_limit () =
  match
    run ~max_steps:50 ~n:1
      [| (fun api -> while true do api.R.yield () done) |]
  with
  | exception R.Step_limit_exceeded -> ()
  | _ -> Alcotest.fail "expected step limit"

(* ---------- Determinism ---------- *)

let ping_pong_programs n rounds =
  Array.init n (fun pid ->
      if pid = 0 then (fun api ->
        for _ = 1 to rounds * (n - 1) do
          let src, v, _ = api.R.recv () in
          ignore (api.R.send src (v + 1))
        done)
      else
        fun api ->
        for r = 1 to rounds do
          ignore (api.R.send 0 r);
          ignore (api.R.recv_from 0)
        done)

let test_deterministic_same_seed () =
  let a = clean (run ~seed:11 ~n:4 (ping_pong_programs 4 3)) in
  let b = clean (run ~seed:11 ~n:4 (ping_pong_programs 4 3)) in
  Alcotest.(check bool) "identical traces" true
    (Trace.steps a.R.trace = Trace.steps b.R.trace)

let test_seeds_differ () =
  let traces =
    List.map
      (fun seed ->
        Trace.steps (clean (run ~seed ~n:4 (ping_pong_programs 4 3))).R.trace)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "some interleaving differs" true
    (List.length (List.sort_uniq compare traces) > 1)

(* ---------- Timestamping middleware ---------- *)

let star_service ~clients ~calls =
  Array.init (clients + 1) (fun pid ->
      if pid = 0 then (fun api ->
        for _ = 1 to clients * calls do
          let src, v, _ = api.R.recv () in
          api.R.internal ();
          ignore (api.R.send src (v * v))
        done)
      else
        fun api ->
        for c = 1 to calls do
          let ts = api.R.send 0 c in
          assert (ts <> None);
          let v, _ = api.R.recv_from 0 in
          assert (v = c * c)
        done)

let test_timestamps_valid () =
  let g = Topology.star 5 in
  let d = Decomposition.best g in
  Alcotest.(check int) "star: an integer suffices" 1 (Decomposition.size d);
  let o = clean (run ~seed:5 ~decomposition:d ~n:5 (star_service ~clients:4 ~calls:3)) in
  match o.R.timestamps with
  | None -> Alcotest.fail "expected timestamps"
  | Some ts ->
      Alcotest.(check int) "one per message" (Trace.message_count o.R.trace)
        (Array.length ts);
      Alcotest.(check bool) "encode the poset" true
        (Validate.ok (Validate.message_timestamps o.R.trace ts))

let test_timestamps_many_seeds () =
  let g = Topology.complete 4 in
  let d = Decomposition.best g in
  List.iter
    (fun seed ->
      let programs =
        Array.init 4 (fun pid ->
            fun api ->
              (* Everyone pings its successor ring-wise twice. *)
              let next = (pid + 1) mod 4 and prev = (pid + 3) mod 4 in
              for _ = 1 to 2 do
                if pid mod 2 = 0 then begin
                  ignore (api.R.send next 1);
                  ignore (api.R.recv_from prev)
                end
                else begin
                  ignore (api.R.recv_from prev);
                  ignore (api.R.send next 1)
                end
              done)
      in
      let o = clean (run ~seed ~decomposition:d ~n:4 programs) in
      match o.R.timestamps with
      | Some ts ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d valid" seed)
            true
            (Validate.ok (Validate.message_timestamps o.R.trace ts))
      | None -> Alcotest.fail "timestamps expected")
    [ 0; 1; 2; 3; 4 ]

let test_trace_topology_subset () =
  let g = Topology.star 5 in
  let d = Decomposition.best g in
  let o = clean (run ~seed:1 ~decomposition:d ~n:5 (star_service ~clients:4 ~calls:2)) in
  let used = Trace.topology o.R.trace in
  Graph.iter_edges
    (fun u v ->
      Alcotest.(check bool)
        (Printf.sprintf "edge (%d,%d) in topology" u v)
        true (Graph.has_edge g u v))
    used

let test_internal_events_recorded () =
  let o =
    clean
      (run ~n:2
         [|
           (fun api ->
             api.R.internal ();
             ignore (api.R.send 1 0);
             api.R.internal ());
           (fun api -> ignore (api.R.recv ()));
         |])
  in
  Alcotest.(check int) "two internal events" 2
    (Trace.internal_count o.R.trace)

(* A bigger integration: a two-server/four-client RPC system, validated
   end-to-end including message poset checks. *)
let test_client_server_integration () =
  let servers = 2 and clients = 4 and calls = 3 in
  let n = servers + clients in
  let g = Topology.client_server ~servers ~clients in
  let d = Decomposition.best g in
  Alcotest.(check int) "d = #servers" servers (Decomposition.size d);
  let programs =
    Array.init n (fun pid ->
        if pid < servers then (fun api ->
          for _ = 1 to clients * calls / servers do
            let src, v, _ = api.R.recv () in
            ignore (api.R.send src (v + 1000))
          done)
        else
          fun api ->
          for c = 1 to calls do
            (* Clients alternate servers deterministically. *)
            let server = (pid + c) mod servers in
            ignore (api.R.send server c);
            let v, _ = api.R.recv_from server in
            assert (v = c + 1000)
          done)
  in
  (* Each server must serve exactly clients*calls/servers requests for the
     program to terminate: with 4 clients, 3 calls, 2 servers each client
     alternates so each server gets 6. *)
  let o = clean (run ~seed:9 ~decomposition:d ~n programs) in
  Alcotest.(check int) "message count" (2 * clients * calls)
    (Trace.message_count o.R.trace);
  match o.R.timestamps with
  | Some ts ->
      Alcotest.(check bool) "timestamps valid" true
        (Validate.ok (Validate.message_timestamps o.R.trace ts));
      Alcotest.(check int) "constant-size vectors" servers
        (Vector.size ts.(0))
  | None -> Alcotest.fail "timestamps expected"

(* ---------- Replay ---------- *)

let test_replay_reproduces () =
  let g = Topology.complete 4 in
  let d = Decomposition.best g in
  let programs = ping_pong_programs 4 3 in
  let original = clean (run ~seed:17 ~decomposition:d ~n:4 programs) in
  let replayed =
    R.replay ~decomposition:d ~trace:original.R.trace programs
  in
  Alcotest.(check bool) "same trace" true
    (Trace.steps replayed.R.trace = Trace.steps original.R.trace);
  Alcotest.(check (list int)) "no deadlock" [] replayed.R.deadlocked;
  match (original.R.timestamps, replayed.R.timestamps) with
  | Some a, Some b ->
      Alcotest.(check bool) "same timestamps" true
        (Array.for_all2 Vector.equal a b)
  | _ -> Alcotest.fail "timestamps expected"

let test_replay_many_seeds () =
  let programs = ping_pong_programs 3 2 in
  List.iter
    (fun seed ->
      let o = clean (run ~seed ~n:3 programs) in
      let r = R.replay ~trace:o.R.trace programs in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d replays" seed)
        true
        (Trace.steps r.R.trace = Trace.steps o.R.trace
        && r.R.deadlocked = []))
    [ 0; 1; 2; 3; 4; 5 ]

let test_replay_divergence () =
  (* Trace says P0 sends to P1; the program receives instead. *)
  let trace = Trace.of_steps_exn ~n:2 [ Send (0, 1) ] in
  let programs =
    [| (fun api -> ignore (api.R.recv ())); (fun api -> ignore (api.R.recv ())) |]
  in
  (match R.replay ~trace programs with
  | exception R.Replay_divergence _ -> ()
  | _ -> Alcotest.fail "divergence not detected");
  (* Trace says internal; program sends. *)
  let trace2 = Trace.of_steps_exn ~n:2 [ Local 0 ] in
  let programs2 =
    [| (fun api -> ignore (api.R.send 1 0)); (fun _ -> ()) |]
  in
  match R.replay ~trace:trace2 programs2 with
  | exception R.Replay_divergence _ -> ()
  | _ -> Alcotest.fail "internal divergence not detected"

let test_replay_truncated_trace () =
  (* A trace shorter than the program leaves fibers pending. *)
  let programs =
    [|
      (fun api ->
        ignore (api.R.send 1 1);
        ignore (api.R.send 1 2));
      (fun api ->
        ignore (api.R.recv ());
        ignore (api.R.recv ()));
    |]
  in
  let trace = Trace.of_steps_exn ~n:2 [ Send (0, 1) ] in
  let r = R.replay ~trace programs in
  Alcotest.(check (list int)) "both pending" [ 0; 1 ] r.R.deadlocked;
  Alcotest.(check int) "prefix executed" 1 (Trace.message_count r.R.trace)

let test_replay_yields_transparent () =
  let programs =
    [|
      (fun api ->
        api.R.yield ();
        ignore (api.R.send 1 9);
        api.R.yield ());
      (fun api ->
        api.R.yield ();
        ignore (api.R.recv ()));
    |]
  in
  let trace = Trace.of_steps_exn ~n:2 [ Send (0, 1) ] in
  let r = R.replay ~trace programs in
  Alcotest.(check (list int)) "completed through yields" [] r.R.deadlocked

(* ---------- Patterns ---------- *)

let test_pattern_rpc () =
  let g = Topology.star 4 in
  let d = Decomposition.best g in
  let programs =
    Array.init 4 (fun pid ->
        if pid = 0 then
          R.Pattern.rpc_server ~requests:6 ~handler:(fun _client v -> v * 10)
        else fun api ->
          for c = 1 to 2 do
            let reply, ts = R.Pattern.rpc_call api ~server:0 (pid + c) in
            assert (reply = (pid + c) * 10);
            assert (ts <> None)
          done)
  in
  let o = clean (run ~seed:2 ~decomposition:d ~n:4 programs) in
  Alcotest.(check int) "12 messages" 12 (Trace.message_count o.R.trace)

let test_pattern_pipeline () =
  let stages = 4 and items = 5 in
  let programs =
    Array.init stages (fun pid ->
        if pid = 0 then (fun api ->
          for i = 1 to items do
            ignore (api.R.send 1 i)
          done)
        else if pid = stages - 1 then (fun api ->
          let total = ref 0 in
          List.iter (fun (_, v) -> total := !total + v)
            (R.Pattern.gather api items);
          (* Each item was incremented once per middle stage. *)
          assert (!total = (items * (items + 1) / 2) + (items * (stages - 2))))
        else R.Pattern.relay ~next:(pid + 1) ~items ~transform:(fun v -> v + 1))
  in
  let o = clean (run ~seed:4 ~n:stages programs) in
  Alcotest.(check int) "messages" (items * (stages - 1))
    (Trace.message_count o.R.trace)

let test_pattern_broadcast_gather () =
  let n = 5 in
  let programs =
    Array.init n (fun pid ->
        if pid = 0 then (fun api ->
          R.Pattern.broadcast api [ 1; 2; 3; 4 ] 99;
          let acks = R.Pattern.gather api 4 in
          assert (List.length acks = 4);
          List.iter (fun (_, v) -> assert (v = 100)) acks)
        else fun api ->
          let v, _ = api.R.recv_from 0 in
          ignore (api.R.send 0 (v + 1)))
  in
  let o = clean (run ~seed:8 ~n programs) in
  Alcotest.(check int) "8 messages" 8 (Trace.message_count o.R.trace)

(* ---------- Fault injection ---------- *)

let test_crash_stop () =
  (* P1 is fail-stopped before it runs: P0 blocks on it forever
     (deadlocked, not crashed), P2 is unaffected and finishes. *)
  let programs =
    [|
      (fun api -> ignore (api.R.send 1 42));
      (fun api -> ignore (api.R.recv ()));
      (fun api -> api.R.internal ());
    |]
  in
  let o =
    run ~n:3 ~faults:[ Synts_fault.Plan.Crash_stop { proc = 1; at = 0.0 } ]
      programs
  in
  Alcotest.(check (list int)) "P1 crashed" [ 1 ] o.R.crashed;
  Alcotest.(check (list int)) "P0 stuck on the corpse" [ 0 ] o.R.deadlocked;
  Alcotest.(check int) "nothing delivered" 0 (Trace.message_count o.R.trace);
  Alcotest.(check int) "P2's internal event survives" 1
    (Trace.internal_count o.R.trace);
  (* Crash_recover degrades to crash-stop here (no process image). *)
  let o2 =
    run ~n:3
      ~faults:[ Synts_fault.Plan.Crash_recover { proc = 1; at = 0.0; after = 5.0 } ]
      programs
  in
  Alcotest.(check (list int)) "recover degrades to stop" [ 1 ] o2.R.crashed;
  (* Network-only clauses are ignored by the in-memory runtime. *)
  let o3 =
    clean (run ~n:3 ~faults:[ Synts_fault.Plan.Duplicate { prob = 1.0 } ] programs)
  in
  Alcotest.(check (list int)) "network clause is a no-op" [] o3.R.crashed;
  Alcotest.(check int) "run completes" 1 (Trace.message_count o3.R.trace);
  (* Plans are validated against n. *)
  Alcotest.(check bool) "bad plan rejected" true
    (try
       ignore
         (run ~n:3 ~faults:[ Synts_fault.Plan.Crash_stop { proc = 7; at = 0.0 } ]
            programs);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "csp"
    [
      ( "explore",
        [
          Alcotest.test_case "dedups schedules" `Quick (fun () ->
              let programs = ping_pong_programs 4 2 in
              let outcomes =
                R.explore ~n:4 ~seeds:(List.init 30 Fun.id) programs
              in
              Alcotest.(check bool) "several distinct schedules" true
                (List.length outcomes > 1);
              Alcotest.(check bool) "strictly fewer than seeds" true
                (List.length outcomes < 30);
              (* Each retained outcome has a unique trace. *)
              let traces =
                List.map (fun (_, o) -> Trace.steps o.R.trace) outcomes
              in
              Alcotest.(check int) "unique"
                (List.length traces)
                (List.length (List.sort_uniq compare traces)));
          Alcotest.test_case "finds deadlocks" `Quick (fun () ->
              (* Two processes both send first: deadlock under every
                 schedule; explore must surface it. *)
              let programs =
                [|
                  (fun api -> ignore (api.R.send 1 0));
                  (fun api -> ignore (api.R.send 0 0));
                |]
              in
              let outcomes = R.explore ~n:2 ~seeds:[ 0; 1; 2 ] programs in
              Alcotest.(check bool) "deadlock found" true
                (List.exists (fun (_, o) -> o.R.deadlocked <> []) outcomes));
        ] );
      ( "replay",
        [
          Alcotest.test_case "reproduces a run" `Quick test_replay_reproduces;
          Alcotest.test_case "across seeds" `Quick test_replay_many_seeds;
          Alcotest.test_case "divergence detection" `Quick
            test_replay_divergence;
          Alcotest.test_case "truncated trace" `Quick
            test_replay_truncated_trace;
          Alcotest.test_case "yields transparent" `Quick
            test_replay_yields_transparent;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "rpc" `Quick test_pattern_rpc;
          Alcotest.test_case "pipeline relay/gather" `Quick
            test_pattern_pipeline;
          Alcotest.test_case "broadcast/gather" `Quick
            test_pattern_broadcast_gather;
        ] );
      ( "faults", [ Alcotest.test_case "crash-stop" `Quick test_crash_stop ] );
      ( "rendezvous",
        [
          Alcotest.test_case "single message" `Quick test_single_message;
          Alcotest.test_case "send blocks" `Quick test_send_blocks_until_recv;
          Alcotest.test_case "recv_from filters" `Quick test_recv_from_filters;
          Alcotest.test_case "internal events" `Quick
            test_internal_events_recorded;
        ] );
      ( "failure-modes",
        [
          Alcotest.test_case "deadlock" `Quick test_deadlock_detected;
          Alcotest.test_case "partial deadlock" `Quick test_partial_deadlock;
          Alcotest.test_case "fiber failure" `Quick test_failure_capture;
          Alcotest.test_case "bad destination" `Quick test_bad_destination;
          Alcotest.test_case "step limit" `Quick test_step_limit;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same trace" `Quick
            test_deterministic_same_seed;
          Alcotest.test_case "seeds explore interleavings" `Quick
            test_seeds_differ;
        ] );
      ( "timestamping",
        [
          Alcotest.test_case "star service" `Quick test_timestamps_valid;
          Alcotest.test_case "many seeds" `Quick test_timestamps_many_seeds;
          Alcotest.test_case "trace topology" `Quick
            test_trace_topology_subset;
          Alcotest.test_case "client-server integration" `Quick
            test_client_server_integration;
        ] );
    ]
