module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Wire = Synts_clock.Wire
module Ingest = Synts_ingest.Ingest
module Telemetry = Synts_telemetry.Telemetry
module Log = Synts_obs.Log
module Merge = Synts_obs.Merge
module Admin = Synts_obs.Admin
module Engine = Synts_server.Engine
module Service = Synts_server.Service
module Protocol = Synts_server.Protocol
module Injector = Synts_fault.Injector
module Plan = Synts_fault.Plan
module Gen = Synts_test_support.Gen

let qtest ?(count = 100) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let events_of_trace trace =
  Array.of_list (List.map Ingest.event_of_step (Trace.steps trace))

(* ---------- structured log records ---------- *)

let test_log_render_text () =
  Alcotest.(check string) "text line"
    "[WARN] tick=7 engine: queue full cap=65536 dropped=3"
    (Log.render_text Log.Warn ~tick:7 ~component:"engine"
       ~kv:[ ("cap", "65536"); ("dropped", "3") ]
       "queue full")

let test_log_render_jsonl () =
  Alcotest.(check string) "jsonl line"
    "{\"level\": \"info\", \"tick\": 3, \"component\": \"server\", \"msg\": \
     \"said \\\"hi\\\"\", \"batches\": \"2\"}"
    (Log.render_jsonl Log.Info ~tick:3 ~component:"server"
       ~kv:[ ("batches", "2") ]
       "said \"hi\"")

(* Severity filtering and the monotone default tick, observed through a
   custom sink. Defaults are restored so other tests keep stderr text. *)
let test_log_filtering () =
  let lines = ref [] in
  Log.set_sink (Custom (fun l -> lines := l :: !lines));
  Log.set_level Log.Warn;
  Fun.protect
    ~finally:(fun () ->
      Log.set_level Log.Info;
      Log.set_sink (Text stderr))
    (fun () ->
      let before = Log.records () in
      Log.info ~component:"x" "dropped by level";
      Log.warn ~component:"x" ~tick:1 "kept";
      Log.error ~component:"y" "kept too";
      Alcotest.(check int) "two records" (before + 2) (Log.records ());
      Alcotest.(check int) "two lines" 2 (List.length !lines);
      Alcotest.(check bool) "filtered out" false
        (List.exists
           (fun l ->
             let n = String.length "dropped by level" in
             let m = String.length l in
             let rec at i =
               (i + n <= m && String.sub l i n = "dropped by level")
               || (i + n <= m && at (i + 1))
             in
             at 0)
           !lines))

(* ---------- merge semantics ---------- *)

let hist ?(bounds = [| 1.; 2. |]) counts inf sum count min max =
  Telemetry.Histogram_v
    {
      buckets = Array.map2 (fun b c -> (b, c)) bounds counts;
      inf;
      sum;
      count;
      min;
      max;
    }

let empty_hist = hist [| 0; 0 |] 0 0. 0 Float.infinity Float.neg_infinity

let test_merge_values () =
  Alcotest.(check bool) "counters add" true
    (Merge.value (Telemetry.Counter_v 3) (Telemetry.Counter_v 4)
    = Telemetry.Counter_v 7);
  Alcotest.(check bool) "gauges max" true
    (Merge.value (Telemetry.Gauge_v 3) (Telemetry.Gauge_v 9)
    = Telemetry.Gauge_v 9);
  Alcotest.(check bool) "histograms add pointwise" true
    (Merge.value
       (hist [| 1; 0 |] 2 7.5 3 0.5 6.)
       (hist [| 0; 2 |] 1 4.0 3 1.5 2.)
    = hist [| 1; 2 |] 3 11.5 6 0.5 6.);
  Alcotest.(check bool) "empty histogram is the identity" true
    (Merge.value empty_hist (hist [| 1; 1 |] 0 2.5 2 0.5 2.)
    = hist [| 1; 1 |] 0 2.5 2 0.5 2.)

let test_merge_mismatch () =
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs.Merge: metric kind mismatch") (fun () ->
      ignore (Merge.value (Telemetry.Counter_v 1) (Telemetry.Gauge_v 1)));
  match
    Merge.value
      (hist ~bounds:[| 1.; 2. |] [| 0; 0 |] 0 0. 0 Float.infinity
         Float.neg_infinity)
      (hist ~bounds:[| 1.; 3. |] [| 0; 0 |] 0 0. 0 Float.infinity
         Float.neg_infinity)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bucket-bounds mismatch must raise"

let test_merge_snapshots_sorted () =
  let merged =
    Merge.snapshots
      [
        [ ("z.late", Telemetry.Counter_v 1); ("a.early", Telemetry.Gauge_v 2) ];
        [ ("m.mid", Telemetry.Counter_v 5); ("z.late", Telemetry.Counter_v 4) ];
      ]
  in
  Alcotest.(check bool) "sorted, summed" true
    (merged
    = [
        ("a.early", Telemetry.Gauge_v 2);
        ("m.mid", Telemetry.Counter_v 5);
        ("z.late", Telemetry.Counter_v 5);
      ]);
  Alcotest.(check bool) "empty" true (Merge.snapshots [] = [])

(* ---------- admin codec ---------- *)

let request_gen =
  QCheck2.Gen.oneofl
    [
      Admin.Health;
      Admin.Metrics Admin.Prom;
      Admin.Metrics Admin.Json;
      Admin.Stats;
      Admin.Tracedump;
    ]

(* Finite floats only: the 8-byte BE IEEE encoding roundtrips any bits,
   but structural equality on NaN would be vacuously false. *)
let qfloat =
  QCheck2.Gen.(map (fun i -> float_of_int i /. 16.) (int_bound 100000))

let shard_stat_gen =
  QCheck2.Gen.(
    map
      (fun (shard, s_events, s_cells, s_messages) ->
        { Admin.shard; s_events; s_cells; s_messages })
      (quad (int_bound 16) (int_bound 10000) (int_bound 10000)
         (int_bound 10000)))

let conn_stat_gen =
  QCheck2.Gen.(
    map2
      (fun (conn, events_in, stamps_out) (dedup_hits, last_seq) ->
        { Admin.conn; events_in; stamps_out; dedup_hits; last_seq })
      (triple (int_bound 64) (int_bound 10000) (int_bound 10000))
      (pair (int_bound 100) (int_range (-1) 10000)))

let stream_stat_gen =
  QCheck2.Gen.(
    map2
      (fun (chains, live, retired) (width, exact, repairs) ->
        { Admin.chains; live; retired; width; exact; repairs })
      (triple (int_bound 100) (int_bound 1000) (int_bound 1000))
      (triple (int_bound 100) bool (int_bound 50)))

let stats_gen =
  QCheck2.Gen.(
    map
      (fun ( (backend, clients, batches, messages),
             (internal, dedup_hits, errors, dropped),
             (pending, p50_ms, p90_ms, p99_ms),
             (shards, conns, stream) ) ->
        {
          Admin.backend;
          clients;
          batches;
          messages;
          internal;
          dedup_hits;
          errors;
          dropped;
          pending;
          p50_ms;
          p90_ms;
          p99_ms;
          shards;
          conns;
          stream;
        })
      (quad
         (quad (string_size (int_bound 12)) (int_bound 64) (int_bound 10000)
            (int_bound 10000))
         (quad (int_bound 10000) (int_bound 100) (int_bound 100)
            (int_bound 100))
         (quad (int_bound 10000) qfloat qfloat qfloat)
         (triple
            (list_size (int_bound 4) shard_stat_gen)
            (list_size (int_bound 4) conn_stat_gen)
            (option stream_stat_gen))))

let response_gen =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun (ok, processes, dimension) (backend, shards) ->
            Admin.Health_r { ok; backend; processes; dimension; shards })
          (triple bool (int_bound 1000) (int_bound 100))
          (pair (string_size (int_bound 12)) (int_bound 16));
        map (fun s -> Admin.Metrics_r s) (string_size (int_bound 64));
        map (fun s -> Admin.Stats_r s) stats_gen;
        map2
          (fun (dropped, spans) jsonl ->
            Admin.Tracedump_r { dropped; spans; jsonl })
          (pair (int_bound 100) (int_bound 1000))
          (string_size (int_bound 64));
        map (fun e -> Admin.Error_r e) (string_size (int_bound 40));
      ])

let test_request_roundtrip =
  qtest ~count:100 "admin request codec roundtrips" request_gen
    (Format.asprintf "%a" Admin.pp_request) (fun req ->
      Admin.decode_request (Admin.encode_request req) = Ok req)

let test_response_roundtrip =
  qtest ~count:300 "admin response codec roundtrips" response_gen
    (Format.asprintf "%a" Admin.pp_response) (fun resp ->
      Admin.decode_response (Admin.encode_response resp) = Ok resp)

(* The family header: data-plane bodies and future family versions are
   rejected with a decode error, not misparsed. *)
let test_family_rejection () =
  (match Admin.decode_request (Protocol.encode_request Protocol.Stats) with
  | Error _ -> ()
  | Ok r ->
      Alcotest.fail
        (Format.asprintf "data-plane body decoded as %a" Admin.pp_request r));
  let future =
    let b = Bytes.of_string (Admin.encode_request Admin.Health) in
    Bytes.set b 1 (Char.chr (Admin.current_version + 1));
    Bytes.to_string b
  in
  match Admin.decode_request future with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted"

(* ---------- cross-shard merge ≡ single-shard oracle ---------- *)

let run_engine ~shards ~batch events d =
  let e = Engine.create ~shards d in
  Fun.protect
    ~finally:(fun () -> Engine.stop e)
    (fun () ->
      let total = Array.length events in
      let off = ref 0 in
      while !off < total do
        let len = min batch (total - !off) in
        ignore (Engine.observe_batch e (Array.sub events !off len));
        off := !off + len
      done;
      ignore (Engine.finish e);
      Engine.telemetry_snapshots e)

let merge_gen = QCheck2.Gen.(pair Gen.computation (int_range 2 4))

let merge_print (c, shards) =
  Printf.sprintf "%s shards=%d" (Gen.computation_print c) shards

(* The per-shard counters are designed to be shard-count invariant:
   merging the k-shard registries must reconstruct the 1-shard oracle
   registry structurally — same names, same counts, same histogram
   buckets — whatever the batching. *)
let test_merge_matches_oracle =
  qtest ~count:60 "k-shard registries merge to the 1-shard oracle" merge_gen
    merge_print (fun (c, shards) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let events = events_of_trace trace in
      let merged =
        Merge.snapshots (run_engine ~shards ~batch:7 events d)
      in
      let oracle =
        Merge.snapshots (run_engine ~shards:1 ~batch:1024 events d)
      in
      merged = oracle)

(* The same property through the byte-level service path with a fault
   injector duplicating and corrupting deliveries: seq dedup and the
   wire checksum keep the engine's effective stream clean, so the merged
   shard registries still equal the clean single-shard oracle. *)
let faulty_gen = QCheck2.Gen.(triple Gen.computation (int_range 2 4) Gen.rng_seed)

let faulty_print (c, shards, seed) =
  Printf.sprintf "%s shards=%d inj_seed=%d" (Gen.computation_print c) shards
    seed

let test_merge_under_faults =
  qtest ~count:25 "merge survives dup/corrupt delivery" faulty_gen
    faulty_print (fun (c, shards, seed) ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let events = events_of_trace trace in
      let oracle =
        Merge.snapshots (run_engine ~shards:1 ~batch:9 events d)
      in
      let service = Service.create ~shards d in
      Fun.protect
        ~finally:(fun () -> Service.stop service)
        (fun () ->
          let conn = Service.attach service in
          let inj =
            Injector.create ~seed
              [ Plan.Duplicate { prob = 0.3 }; Plan.Corrupt { prob = 0.3 } ]
          in
          let deliver raw =
            let wire =
              if Injector.roll_corrupt inj then Injector.flip_bit inj raw
              else raw
            in
            let reply = Service.handle_raw service conn wire in
            if Injector.roll_duplicate inj then
              Service.handle_raw service conn wire
            else reply
          in
          let decode reply =
            match Wire.unframe reply with
            | Error e -> failwith ("reply frame: " ^ e)
            | Ok body -> (
                match Protocol.decode_response body with
                | Error e -> failwith ("reply decode: " ^ e)
                | Ok r -> r)
          in
          let total = Array.length events in
          let seq = ref 0 and off = ref 0 in
          while !off < total do
            let len = min 9 (total - !off) in
            let req =
              Protocol.Observe
                { seq = !seq; events = Array.sub events !off len }
            in
            let raw = Wire.frame (Protocol.encode_request req) in
            let rec attempt tries =
              if tries > 64 then failwith "no progress against injector";
              match decode (deliver raw) with
              | Protocol.Outcomes _ -> ()
              | Protocol.Error_r _ -> attempt (tries + 1)
              | other ->
                  Format.kasprintf failwith "unexpected %a"
                    Protocol.pp_response other
            in
            attempt 0;
            incr seq;
            off := !off + len
          done;
          (* Head of the list is the service's own registry (latency,
             dedup) — nondeterministic; the merge property is about the
             engine's per-shard registries behind it. *)
          let shard_snaps = List.tl (Service.telemetry_snapshots service) in
          Merge.snapshots shard_snaps = oracle))

let () =
  Alcotest.run "obs"
    [
      ( "log",
        [
          Alcotest.test_case "text rendering" `Quick test_log_render_text;
          Alcotest.test_case "jsonl rendering" `Quick test_log_render_jsonl;
          Alcotest.test_case "level filter + ticks" `Quick test_log_filtering;
        ] );
      ( "merge",
        [
          Alcotest.test_case "value semantics" `Quick test_merge_values;
          Alcotest.test_case "mismatches raise" `Quick test_merge_mismatch;
          Alcotest.test_case "snapshots sort and sum" `Quick
            test_merge_snapshots_sorted;
        ] );
      ( "admin codec",
        [
          test_request_roundtrip;
          test_response_roundtrip;
          Alcotest.test_case "family header rejection" `Quick
            test_family_rejection;
        ] );
      ( "cross-shard",
        [ test_merge_matches_oracle; test_merge_under_faults ] );
    ]
