(* QCheck generators shared by the test suites. *)

module Rng = Synts_util.Rng
module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Trace = Synts_sync.Trace
module Workload = Synts_workload.Workload

(* A deterministic Rng seeded from QCheck's random state, so shrinking and
   reproduction work through a single integer. *)
let rng_seed = QCheck2.Gen.int_bound 1_000_000

let topology_spec : Topology.spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      map (fun n -> Topology.Star (n + 2)) (int_bound 10);
      return Topology.Triangle;
      map (fun n -> Topology.Complete (n + 3)) (int_bound 5);
      map (fun n -> Topology.Path (n + 2)) (int_bound 10);
      map (fun n -> Topology.Ring (n + 3)) (int_bound 8);
      map2
        (fun s c -> Topology.Client_server (s + 1, c + 1))
        (int_bound 3) (int_bound 8);
      map (fun t -> Topology.Disjoint_triangles (t + 1)) (int_bound 3);
      map (fun n -> Topology.Random_tree (n + 2)) (int_bound 12);
      map2
        (fun n p -> Topology.Random_connected (n + 3, 0.1 +. p))
        (int_bound 8)
        (float_bound_inclusive 0.5);
      return Topology.Fig4;
      return Topology.Fig2b;
    ]

let graph_of_spec seed spec = Topology.build ~rng:(Rng.create seed) spec

(* A random synchronous computation: topology + message count + seed. *)
type computation = {
  spec : Topology.spec;
  seed : int;
  messages : int;
  internal_prob : float;
}

let computation : computation QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* spec = topology_spec in
  let* seed = rng_seed in
  let* messages = int_range 0 80 in
  let* internal_prob = float_bound_inclusive 0.4 in
  return { spec; seed; messages; internal_prob }

let computation_print c =
  Printf.sprintf "{topology=%s; seed=%d; messages=%d; internal=%.2f}"
    (Topology.spec_to_string c.spec)
    c.seed c.messages c.internal_prob

let build_computation c =
  let g = graph_of_spec c.seed c.spec in
  let trace =
    Workload.random (Rng.create (c.seed + 1)) ~topology:g ~messages:c.messages
      ~internal_prob:c.internal_prob ()
  in
  (g, trace)

(* Small sparse-ish random graphs for exact-solver comparisons. *)
let small_graph : (int * (int * int) list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 2 9 in
  let* seed = rng_seed in
  let rng = Rng.create seed in
  let* p = float_range 0.15 0.7 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.chance rng p then edges := (i, j) :: !edges
    done
  done;
  return (n, !edges)

let small_graph_print (n, edges) =
  Printf.sprintf "n=%d edges=[%s]" n
    (String.concat "; "
       (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges))

(* Random posets for realizer / width properties. *)
let poset : Synts_poset.Poset.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 0 40 in
  let* seed = rng_seed in
  let* p = float_bound_inclusive 0.5 in
  return (Synts_poset.Poset.random (Rng.create seed) n p)

let tiny_poset : Synts_poset.Poset.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* seed = rng_seed in
  let* p = float_bound_inclusive 0.6 in
  return (Synts_poset.Poset.random (Rng.create seed) n p)
