test/support/gen.ml: List Printf QCheck2 String Synts_graph Synts_poset Synts_sync Synts_util Synts_workload
