module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Poset = Synts_poset.Poset
module Dot = Synts_export.Dot
module Gen = Synts_test_support.Gen

let qtest ?(count = 100) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let count_occurrences needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub haystack i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_topology_dot () =
  let g = Topology.triangle () in
  let s = Dot.topology g in
  Alcotest.(check int) "three edges" 3 (count_occurrences " -- " s);
  Alcotest.(check bool) "graph header" true
    (String.length s > 0 && String.sub s 0 5 = "graph");
  Alcotest.(check int) "three nodes labelled" 3 (count_occurrences "label=\"P" s)

let test_decomposition_dot () =
  let g = Topology.fig4_tree () in
  let d = Decomposition.paper g in
  let s = Dot.decomposition g d in
  Alcotest.(check int) "one colored line per edge" (Graph.m g)
    (count_occurrences "color=" s / 2 (* color + fontcolor per edge *));
  Alcotest.(check int) "three centers doubled" 3
    (count_occurrences "peripheries=2" s);
  Alcotest.(check bool) "groups named" true
    (count_occurrences "label=\"E1\"" s > 0
    && count_occurrences "label=\"E3\"" s > 0)

let test_decomposition_dot_rejects () =
  let g = Topology.complete 4 in
  let d = Decomposition.paper (Topology.star 4) in
  match Dot.decomposition g d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uncovered graph accepted"

let test_poset_dot () =
  let p = Poset.of_relation 3 [ (0, 1); (1, 2) ] in
  let s = Dot.poset p in
  (* Transitive reduction: only the two cover edges. *)
  Alcotest.(check int) "cover edges only" 2 (count_occurrences " -> " s)

let test_message_poset_dot () =
  let trace = Synts_sync.Examples.fig1 () in
  let s = Dot.message_poset trace in
  Alcotest.(check bool) "labels carry endpoints" true
    (count_occurrences "m1: P1->P2" s = 1);
  Alcotest.(check bool) "digraph" true (String.sub s 0 7 = "digraph")

let test_decomposition_dot_total =
  qtest "decomposition export covers every edge exactly once"
    Gen.small_graph Gen.small_graph_print (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let d = Decomposition.paper g in
      let s = Dot.decomposition g d in
      count_occurrences " -- " s = Graph.m g)

(* ---------- SVG ---------- *)

module Svg = Synts_export.Svg

let test_svg_structure () =
  let trace = Synts_sync.Examples.fig6 () in
  let d = Synts_sync.Examples.fig6_decomposition () in
  let ts = Synts_core.Online.timestamp_trace d trace in
  let s = Svg.diagram ~timestamps:ts ~decomposition:d trace in
  Alcotest.(check bool) "svg root" true (String.sub s 0 4 = "<svg");
  (* One arrow line per message, one horizontal line per process. *)
  Alcotest.(check int) "arrows" 6 (count_occurrences "marker-end" s);
  Alcotest.(check int) "process lines" 5 (count_occurrences "stroke=\"#999\"" s);
  Alcotest.(check int) "timestamp labels" 1
    (count_occurrences ">(1,1,1)<" s);
  Alcotest.(check bool) "closes" true
    (String.length s > 6
    && String.sub s (String.length s - 7) 6 = "</svg>")

let test_svg_internal_events () =
  let trace =
    Synts_sync.Trace.of_steps_exn ~n:2 [ Local 0; Send (0, 1); Local 1 ]
  in
  let s = Svg.diagram trace in
  Alcotest.(check int) "two event dots" 2 (count_occurrences "<circle" s);
  Alcotest.(check int) "default message label" 1 (count_occurrences ">m1<" s)

let test_svg_rejects () =
  let trace = Synts_sync.Trace.of_steps_exn ~n:2 [ Send (0, 1) ] in
  (match Svg.diagram ~timestamps:[||] trace with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad timestamp count accepted");
  let d = Decomposition.paper (Topology.star 4) in
  let foreign = Synts_sync.Trace.of_steps_exn ~n:4 [ Send (1, 2) ] in
  match Svg.diagram ~decomposition:d foreign with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uncovered channel accepted"

let () =
  Alcotest.run "export"
    [
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "internal events" `Quick test_svg_internal_events;
          Alcotest.test_case "rejects" `Quick test_svg_rejects;
        ] );
      ( "dot",
        [
          Alcotest.test_case "topology" `Quick test_topology_dot;
          Alcotest.test_case "decomposition" `Quick test_decomposition_dot;
          Alcotest.test_case "rejects uncovered" `Quick
            test_decomposition_dot_rejects;
          Alcotest.test_case "poset hasse" `Quick test_poset_dot;
          Alcotest.test_case "message poset" `Quick test_message_poset_dot;
          test_decomposition_dot_total;
        ] );
    ]
