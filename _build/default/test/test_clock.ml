module Vector = Synts_clock.Vector
module Fm_sync = Synts_clock.Fm_sync
module Fm_event = Synts_clock.Fm_event
module Lamport = Synts_clock.Lamport
module Plausible = Synts_clock.Plausible
module Direct_dependency = Synts_clock.Direct_dependency
module Singhal_kshemkalyani = Synts_clock.Singhal_kshemkalyani
module Trace = Synts_sync.Trace
module Async_trace = Synts_sync.Async_trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Validate = Synts_check.Validate
module Oracle = Synts_check.Oracle
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- Vector algebra ---------- *)

let vec_gen =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* u = array_size (return n) (int_bound 5) in
    let* v = array_size (return n) (int_bound 5) in
    return (u, v))

let vec_print (u, v) = Vector.to_string u ^ " vs " ^ Vector.to_string v

let test_vector_classify =
  qtest "compare_order consistent with lt/leq/concurrent" vec_gen vec_print
    (fun (u, v) ->
      match Vector.compare_order u v with
      | `Lt -> Vector.lt u v && Vector.leq u v && not (Vector.concurrent u v)
      | `Gt -> Vector.lt v u && not (Vector.lt u v)
      | `Eq -> Vector.equal u v && Vector.leq u v && not (Vector.lt u v)
      | `Concurrent ->
          Vector.concurrent u v
          && (not (Vector.lt u v))
          && not (Vector.lt v u))

let test_vector_antisymmetry =
  qtest "lt is antisymmetric" vec_gen vec_print (fun (u, v) ->
      not (Vector.lt u v && Vector.lt v u))

let test_vector_merge_is_lub =
  qtest "merge is the least upper bound" vec_gen vec_print (fun (u, v) ->
      let m = Vector.merge u v in
      Vector.leq u m && Vector.leq v m
      && Array.for_all Fun.id (Array.mapi (fun i x -> x = max u.(i) v.(i)) m))

let test_vector_ops () =
  let v = Vector.zero 3 in
  Vector.incr v 1;
  Alcotest.(check string) "incr" "(0,1,0)" (Vector.to_string v);
  Vector.max_into ~dst:v [| 2; 0; 0 |];
  Alcotest.(check string) "max_into" "(2,1,0)" (Vector.to_string v);
  Alcotest.check_raises "size mismatch" (Invalid_argument "Vector: size mismatch")
    (fun () -> ignore (Vector.lt v [| 1 |]))

(* ---------- Fidge–Mattern (sync) ---------- *)

let test_fm_sync_exact =
  qtest "FM sync timestamps encode the message poset" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      Validate.ok (Validate.message_timestamps trace (Fm_sync.timestamp_trace trace)))

let test_fm_sync_size () =
  let trace = Trace.of_steps_exn ~n:7 [ Send (0, 1); Send (5, 6) ] in
  let ts = Fm_sync.timestamp_trace trace in
  Alcotest.(check int) "vector size is N" 7 (Vector.size ts.(0));
  Alcotest.(check int) "2N entries per message" 14
    (Fm_sync.entries_per_message ~n:7)

(* ---------- Fidge–Mattern (event) ---------- *)

let test_fm_event_chain () =
  (* P0 sends to P1, P1 then sends to P2: receive vectors grow. *)
  let a =
    Async_trace.make_exn ~n:3
      [|
        [ Async_trace.ASend 0 ];
        [ Async_trace.ARecv 0; Async_trace.ASend 1 ];
        [ Async_trace.ARecv 1 ];
      |]
  in
  let vs = Fm_event.message_vectors a in
  Alcotest.(check bool) "v(m0) < v(m1)" true (Vector.lt vs.(0) vs.(1))

let test_fm_event_concurrent () =
  let a =
    Async_trace.make_exn ~n:4
      [|
        [ Async_trace.ASend 0 ];
        [ Async_trace.ARecv 0 ];
        [ Async_trace.ASend 1 ];
        [ Async_trace.ARecv 1 ];
      |]
  in
  let vs = Fm_event.message_vectors a in
  Alcotest.(check bool) "disjoint messages concurrent" true
    (Vector.concurrent vs.(0) vs.(1))

let test_fm_event_internal_count () =
  let a =
    Async_trace.make_exn ~n:2
      [|
        [ Async_trace.ALocal; Async_trace.ASend 0; Async_trace.ALocal ];
        [ Async_trace.ARecv 0 ];
      |]
  in
  let per = Fm_event.timestamps a in
  Alcotest.(check int) "P0 events" 3 (List.length per.(0));
  Alcotest.(check int) "P1 events" 1 (List.length per.(1));
  (* P0's clock ticks at each event. *)
  let last = List.nth per.(0) 2 in
  Alcotest.(check int) "P0 own component" 3 last.(0)

(* ---------- Lamport ---------- *)

let test_lamport_sound =
  qtest "Lamport clocks are sound" Gen.computation Gen.computation_print
    (fun c ->
      let _, trace = Gen.build_computation c in
      let ts = Lamport.timestamp_trace trace in
      Lamport.consistent_with trace ts
      && Validate.ok (Validate.sound_only trace ts))

let test_lamport_not_complete () =
  (* Two concurrent messages get comparable integers: completeness fails. *)
  let trace = Trace.of_steps_exn ~n:4 [ Send (0, 1); Send (2, 3); Send (2, 3) ] in
  let ts = Lamport.timestamp_trace trace in
  let p = Message_poset.of_trace trace in
  Alcotest.(check bool) "m0 || m2" true (Poset.concurrent p 0 2);
  Alcotest.(check bool) "but scalar orders them" true (ts.(0) < ts.(2))

(* ---------- Plausible clocks ---------- *)

let test_plausible_sound =
  qtest "plausible clocks never miss a real ordering" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let r = max 1 (Trace.n trace / 2) in
      let vs = Plausible.timestamp_trace ~r trace in
      let v = Validate.message_timestamps trace vs in
      (* Soundness = no missed orders; false orders are expected. *)
      v.Validate.missed_orders = 0)

let test_plausible_full_size_exact =
  qtest "plausible with r = N degenerates to exact FM" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let vs = Plausible.timestamp_trace ~r:(Trace.n trace) trace in
      Validate.ok (Validate.message_timestamps trace vs))

let test_plausible_classes =
  qtest ~count:100 "arbitrary class mappings stay sound" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      (* Cluster processes into pairs. *)
      let classes = Array.init (Trace.n trace) (fun p -> p / 2) in
      let vs = Plausible.timestamp_trace_with ~classes trace in
      (Validate.message_timestamps trace vs).Validate.missed_orders = 0)

let test_plausible_identity_classes_exact =
  qtest ~count:80 "identity classes recover exact FM" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let classes = Array.init (Trace.n trace) Fun.id in
      let vs = Plausible.timestamp_trace_with ~classes trace in
      Validate.ok (Validate.message_timestamps trace vs))

let test_plausible_errs () =
  (* Folding 4 processes into r=1 orders everything: concurrent pairs get
     falsely ordered. *)
  let trace =
    Trace.of_steps_exn ~n:4 [ Send (0, 1); Send (2, 3); Send (0, 1); Send (2, 3) ]
  in
  let rate = Plausible.ordering_error_rate ~r:1 trace in
  Alcotest.(check bool) "r=1 has errors" true (rate > 0.0);
  let exact = Plausible.ordering_error_rate ~r:4 trace in
  Alcotest.(check (float 0.0)) "r=N exact" 0.0 exact

(* ---------- Direct dependency ---------- *)

let test_direct_dependency_exact =
  qtest "direct-dependency search equals oracle precedence" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let log = Direct_dependency.of_trace trace in
      let p = Oracle.message_poset trace in
      let k = Trace.message_count trace in
      let ok = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if i <> j && Direct_dependency.precedes log i j <> Poset.lt p i j
          then ok := false
        done
      done;
      !ok)

let test_direct_dependency_cost () =
  Alcotest.(check int) "constant piggyback" 2
    Direct_dependency.entries_per_message

(* ---------- Singhal–Kshemkalyani ---------- *)

let test_sk_same_timestamps =
  qtest "SK compression produces FM's timestamps" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let sk, _ = Singhal_kshemkalyani.simulate trace in
      let fm = Fm_sync.timestamp_trace trace in
      Array.for_all2 Vector.equal sk fm)

let test_sk_compresses =
  qtest "SK never sends more than full vectors" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let _, stats = Singhal_kshemkalyani.simulate trace in
      stats.Singhal_kshemkalyani.entries_sent
      <= stats.Singhal_kshemkalyani.full_entries)

let test_sk_repeated_channel () =
  (* Repeated exchanges over one channel touch few components: strong
     compression. *)
  let trace =
    Trace.of_steps_exn ~n:6
      (List.concat (List.init 20 (fun _ -> [ Trace.Send (0, 1) ])))
  in
  let _, stats = Singhal_kshemkalyani.simulate trace in
  let avg = Singhal_kshemkalyani.average_entries_per_message stats in
  Alcotest.(check bool) "average well below 2N = 12" true (avg < 6.0)

(* ---------- Wire encoding ---------- *)

module Wire = Synts_clock.Wire

let small_vec =
  QCheck2.Gen.(array_size (int_range 0 10) (int_bound 1_000_000))

let test_wire_roundtrip =
  qtest ~count:300 "encode/decode round-trips" small_vec Vector.to_string
    (fun v ->
      match Wire.decode (Wire.encode v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let test_wire_size =
  qtest ~count:200 "encoded_bytes matches actual encoding" small_vec
    Vector.to_string (fun v ->
      Wire.encoded_bytes v = String.length (Wire.encode v))

let test_wire_small_vectors_cheap () =
  (* A fresh 4-entry clock costs 5 bytes; a fresh 128-entry FM clock 129. *)
  Alcotest.(check int) "d=4" 5 (Wire.encoded_bytes (Vector.zero 4));
  Alcotest.(check int) "N=128" 130 (Wire.encoded_bytes (Vector.zero 128));
  Alcotest.(check int) "big counters grow log" 3
    (String.length (Wire.encode [| 300 |]))

let test_wire_rejects () =
  (match Wire.decode "" with Error _ -> () | Ok _ -> Alcotest.fail "empty");
  (match Wire.decode "\x02\x01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated");
  (match Wire.decode (Wire.encode [| 1; 2 |] ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing");
  match Wire.decode "\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overflowing varint"

let test_wire_diff =
  qtest ~count:300 "diff round-trips against the previous vector"
    QCheck2.Gen.(
      let* n = int_range 0 10 in
      let* prev = array_size (return n) (int_bound 100) in
      let* v = array_size (return n) (int_bound 100) in
      return (prev, v))
    (fun (p, v) -> Vector.to_string p ^ " -> " ^ Vector.to_string v)
    (fun (prev, v) ->
      match Wire.decode_diff ~prev (Wire.encode_diff ~prev v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let test_wire_diff_compresses () =
  let prev = Array.make 64 7 in
  let v = Array.copy prev in
  v.(10) <- 8;
  let diff = Wire.encode_diff ~prev v in
  let full = Wire.encode v in
  Alcotest.(check bool) "diff much smaller" true
    (String.length diff < String.length full / 4);
  Alcotest.(check int) "single change costs 3 bytes" 3 (String.length diff)

let () =
  Alcotest.run "clock"
    [
      ( "wire",
        [
          Alcotest.test_case "small vectors cheap" `Quick
            test_wire_small_vectors_cheap;
          Alcotest.test_case "rejects malformed" `Quick test_wire_rejects;
          Alcotest.test_case "diff compresses" `Quick test_wire_diff_compresses;
          test_wire_roundtrip;
          test_wire_size;
          test_wire_diff;
          (let gen =
             QCheck2.Gen.(
               string_size ~gen:(char_range '\000' '\255') (int_bound 40))
           in
           qtest ~count:300 "decoder never raises on junk" gen String.escaped
             (fun junk ->
               (match Wire.decode junk with Ok _ | Error _ -> true)
               &&
               match Wire.decode_diff ~prev:[| 1; 2; 3 |] junk with
               | Ok _ | Error _ -> true));
        ] );
      ( "vector",
        [
          Alcotest.test_case "ops" `Quick test_vector_ops;
          test_vector_classify;
          test_vector_antisymmetry;
          test_vector_merge_is_lub;
        ] );
      ( "fm-sync",
        [
          Alcotest.test_case "size is N" `Quick test_fm_sync_size;
          test_fm_sync_exact;
        ] );
      ( "fm-event",
        [
          Alcotest.test_case "causal chain" `Quick test_fm_event_chain;
          Alcotest.test_case "concurrency" `Quick test_fm_event_concurrent;
          Alcotest.test_case "event counting" `Quick
            test_fm_event_internal_count;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "incompleteness witness" `Quick
            test_lamport_not_complete;
          test_lamport_sound;
        ] );
      ( "plausible",
        [
          Alcotest.test_case "error rates" `Quick test_plausible_errs;
          test_plausible_sound;
          test_plausible_full_size_exact;
          test_plausible_classes;
          test_plausible_identity_classes_exact;
        ] );
      ( "direct-dependency",
        [
          Alcotest.test_case "piggyback cost" `Quick
            test_direct_dependency_cost;
          test_direct_dependency_exact;
        ] );
      ( "singhal-kshemkalyani",
        [
          Alcotest.test_case "compression on hot channel" `Quick
            test_sk_repeated_channel;
          test_sk_same_timestamps;
          test_sk_compresses;
        ] );
    ]
