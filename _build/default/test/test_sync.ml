module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Happened_before = Synts_sync.Happened_before
module Async_trace = Synts_sync.Async_trace
module Synchronous = Synts_sync.Synchronous
module Diagram = Synts_sync.Diagram
module Examples = Synts_sync.Examples
module Poset = Synts_poset.Poset
module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Workload = Synts_workload.Workload
module Oracle = Synts_check.Oracle
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- Trace construction ---------- *)

let test_trace_build () =
  let t =
    Trace.of_steps_exn ~n:3
      [ Send (0, 1); Local 2; Send (1, 2); Local 1; Send (2, 0) ]
  in
  Alcotest.(check int) "n" 3 (Trace.n t);
  Alcotest.(check int) "messages" 3 (Trace.message_count t);
  Alcotest.(check int) "internals" 2 (Trace.internal_count t);
  let m1 = Trace.message t 1 in
  Alcotest.(check (pair int int)) "participants" (1, 2)
    (Trace.participants m1);
  Alcotest.(check bool) "involves 1" true (Trace.involves m1 1);
  Alcotest.(check bool) "not involves 0" false (Trace.involves m1 0);
  Alcotest.(check int) "pos" 2 m1.Trace.pos;
  let top = Trace.topology t in
  Alcotest.(check int) "topology edges" 3 (Graph.m top)

let test_trace_rejects () =
  (match Trace.of_steps ~n:2 [ Send (0, 0) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self-message accepted");
  (match Trace.of_steps ~n:2 [ Send (0, 2) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out of range accepted");
  match Trace.of_steps ~n:0 [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "n=0 accepted"

let test_trace_histories () =
  let t =
    Trace.of_steps_exn ~n:3 [ Send (0, 1); Local 1; Send (2, 1); Send (0, 2) ]
  in
  let ids =
    List.map
      (function
        | Trace.Msg m -> `M m.Trace.id
        | Trace.Int e -> `I e.Trace.id)
      (Trace.process_history t 1)
  in
  Alcotest.(check bool) "history of P1" true (ids = [ `M 0; `I 0; `M 1 ])

let test_restrict_messages () =
  let t =
    Trace.of_steps_exn ~n:2 [ Local 0; Send (0, 1); Local 1; Send (1, 0) ]
  in
  let t' = Trace.restrict_messages t in
  Alcotest.(check int) "no internals" 0 (Trace.internal_count t');
  Alcotest.(check int) "messages kept" 2 (Trace.message_count t')

let test_concat () =
  let a = Trace.of_steps_exn ~n:2 [ Send (0, 1) ] in
  let b = Trace.of_steps_exn ~n:2 [ Send (1, 0) ] in
  match Trace.concat_steps a b with
  | Ok t -> Alcotest.(check int) "concat messages" 2 (Trace.message_count t)
  | Error e -> Alcotest.fail e

(* ---------- Figure 1 ---------- *)

let test_fig1_relations () =
  let t = Examples.fig1 () in
  let p = Message_poset.of_trace t in
  (* Paper ids m1..m6 are 0..5. *)
  Alcotest.(check bool) "m1 || m2" true (Poset.concurrent p 0 1);
  Alcotest.(check bool) "m1 |> m3" true (Message_poset.directly_precedes t 0 2);
  Alcotest.(check bool) "m2 -> m6" true (Poset.lt p 1 5);
  Alcotest.(check bool) "m3 -> m5" true (Poset.lt p 2 4);
  match Message_poset.chain_between t 0 4 with
  | Some chain -> Alcotest.(check int) "chain size 4" 4 (List.length chain)
  | None -> Alcotest.fail "expected a chain m1 -> m5"

let test_chain_between_none () =
  let t = Examples.fig1 () in
  (* m2 comes after m1 on no shared process: no chain m5 -> m1. *)
  Alcotest.(check bool) "no backwards chain" true
    (Message_poset.chain_between t 4 0 = None);
  match Message_poset.chain_between t 3 3 with
  | Some [ 3 ] -> ()
  | _ -> Alcotest.fail "reflexive chain"

(* ---------- Message poset vs oracle ---------- *)

let test_poset_matches_oracle =
  qtest "consecutive-pair poset equals full-relation oracle" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      Poset.equal (Message_poset.of_trace trace) (Oracle.message_poset trace))

(* ---------- Linearization independence ---------- *)

let test_linearization_independence =
  (* The model stores one interleaving, but (M, ↦) — and therefore every
     timestamp-derived relation — depends only on per-process orders and
     pairing. Re-linearizing the same poset must preserve it. *)
  qtest ~count:150 "the poset is linearization-independent"
    QCheck2.Gen.(pair Gen.computation (int_bound 100000))
    (fun (c, s) -> Printf.sprintf "%s relin_seed=%d" (Gen.computation_print c) s)
    (fun ((c, relin_seed) : Gen.computation * int) ->
      let _, trace = Gen.build_computation c in
      let trace = Trace.restrict_messages trace in
      let p = Message_poset.of_trace trace in
      let k = Trace.message_count trace in
      if k = 0 then true
      else begin
        (* Random topological re-linearization of the messages. *)
        let rng = Rng.create relin_seed in
        let indeg = Array.make k 0 in
        for i = 0 to k - 1 do
          for j = 0 to k - 1 do
            if i <> j && Poset.lt p i j then indeg.(j) <- indeg.(j) + 1
          done
        done;
        let available = ref [] in
        Array.iteri (fun m d -> if d = 0 then available := m :: !available) indeg;
        let order = ref [] in
        while !available <> [] do
          let m = Rng.pick rng !available in
          available := List.filter (fun x -> x <> m) !available;
          order := m :: !order;
          for j = 0 to k - 1 do
            if m <> j && Poset.lt p m j then begin
              indeg.(j) <- indeg.(j) - 1;
              if indeg.(j) = 0 then available := j :: !available
            end
          done
        done;
        let order = List.rev !order in
        let steps =
          List.map
            (fun m ->
              let msg = Trace.message trace m in
              Trace.Send (msg.Trace.src, msg.Trace.dst))
            order
        in
        let trace' = Trace.of_steps_exn ~n:(Trace.n trace) steps in
        let p' = Message_poset.of_trace trace' in
        (* Map original id -> new id via position in the new order. *)
        let new_id = Array.make k 0 in
        List.iteri (fun idx m -> new_id.(m) <- idx) order;
        let ok = ref true in
        for i = 0 to k - 1 do
          for j = 0 to k - 1 do
            if i <> j && Poset.lt p i j <> Poset.lt p' new_id.(i) new_id.(j)
            then ok := false
          done
        done;
        !ok
      end)

(* ---------- Lemma 1 ---------- *)

let test_lemma1_star_triangle =
  qtest "Lemma 1: star and triangle topologies give total orders"
    QCheck2.Gen.(
      let* star = bool in
      let* n = int_range 2 8 in
      let* seed = int_bound 100000 in
      let* messages = int_range 0 40 in
      return (star, n, seed, messages))
    (fun (star, n, seed, messages) ->
      Printf.sprintf "star=%b n=%d seed=%d msgs=%d" star n seed messages)
    (fun (star, n, seed, messages) ->
      let g = if star then Topology.star n else Topology.triangle () in
      let trace =
        Workload.random (Rng.create seed) ~topology:g ~messages ()
      in
      Message_poset.is_total_order (Message_poset.of_trace trace))

let test_lemma1_converse () =
  (* Any topology that is neither a star nor a triangle has two disjoint
     edges; sending over both concurrently yields incomparable messages. *)
  let witnesses =
    [
      Topology.path 4;
      Topology.complete 4;
      Topology.ring 5;
      Topology.client_server ~servers:2 ~clients:2;
      Topology.fig2b ();
    ]
  in
  List.iter
    (fun g ->
      let edges = Graph.edges g in
      let (u1, v1), (u2, v2) =
        let rec find = function
          | (a, b) :: rest -> (
              match
                List.find_opt
                  (fun (c, d) ->
                    a <> c && a <> d && b <> c && b <> d)
                  rest
              with
              | Some e -> ((a, b), e)
              | None -> find rest)
          | [] -> Alcotest.fail "no disjoint edges found"
        in
        find edges
      in
      let trace =
        Trace.of_steps_exn ~n:(Graph.n g) [ Send (u1, v1); Send (u2, v2) ]
      in
      let p = Message_poset.of_trace trace in
      Alcotest.(check bool) "concurrent pair exists" true
        (Poset.concurrent p 0 1))
    witnesses

(* ---------- Happened-before oracle ---------- *)

let test_hb_basics () =
  (* P0: e0, m0(P0->P1); P1: m0, e1. So e0 -> e1 through the message. *)
  let t = Trace.of_steps_exn ~n:2 [ Local 0; Send (0, 1); Local 1 ] in
  let hb = Happened_before.of_trace t in
  Alcotest.(check bool) "e0 -> e1" true (Happened_before.internal_hb t hb 0 1);
  Alcotest.(check bool) "not e1 -> e0" false
    (Happened_before.internal_hb t hb 1 0)

let test_hb_sender_side () =
  (* With synchronous messages the acknowledgement also creates order:
     an internal event after the *receive* happens-before an event after
     the *send* side's next activity... here: P0: m0, e0; P1: m0, e1.
     e0 and e1 are both after the sync point and concurrent. *)
  let t = Trace.of_steps_exn ~n:2 [ Send (0, 1); Local 0; Local 1 ] in
  let hb = Happened_before.of_trace t in
  Alcotest.(check bool) "e0 || e1" true
    ((not (Happened_before.internal_hb t hb 0 1))
    && not (Happened_before.internal_hb t hb 1 0))

(* ---------- Synchronizability ---------- *)

let test_sync_traces_are_synchronous =
  qtest "every synchronous trace is synchronizable" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let a = Async_trace.of_trace trace in
      Synchronous.is_synchronous a
      &&
      match Synchronous.integer_timestamps a with
      | Some ts -> Synchronous.respects a ts
      | None -> false)

let test_crown_not_synchronous () =
  let a = Async_trace.crown () in
  Alcotest.(check bool) "crown rejected" false (Synchronous.is_synchronous a);
  Alcotest.(check (option (list int))) "no timestamps" None
    (Option.map Array.to_list (Synchronous.integer_timestamps a))

let test_to_trace_roundtrip =
  qtest "to_trace preserves the message poset" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let a = Async_trace.of_trace trace in
      match Synchronous.to_trace a with
      | None -> false
      | Some t' ->
          (* Message ids may be renumbered; compare poset sizes and
             per-process message orders instead. *)
          Trace.message_count t' = Trace.message_count trace
          && Trace.internal_count t' = Trace.internal_count trace
          && Poset.relation_count (Message_poset.of_trace t')
             = Poset.relation_count (Message_poset.of_trace trace))

let test_respects_rejects () =
  let a =
    Async_trace.make_exn ~n:2
      [| [ Async_trace.ASend 0; Async_trace.ASend 1 ];
         [ Async_trace.ARecv 0; Async_trace.ARecv 1 ] |]
  in
  Alcotest.(check bool) "decreasing assignment rejected" false
    (Synchronous.respects a [| 1; 0 |]);
  Alcotest.(check bool) "increasing accepted" true
    (Synchronous.respects a [| 0; 1 |])

let test_async_make_rejects () =
  (match
     Async_trace.make ~n:2 [| [ Async_trace.ASend 0 ]; [] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing receive accepted");
  (match
     Async_trace.make ~n:1 [| [ Async_trace.ASend 0; Async_trace.ARecv 0 ] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self delivery accepted");
  match
    Async_trace.make ~n:2
      [| [ Async_trace.ASend 1 ]; [ Async_trace.ARecv 1 ] |]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-contiguous ids accepted"

(* ---------- Diagram ---------- *)

let test_diagram_fig1 () =
  let s = Diagram.render (Examples.fig1 ()) in
  let lines = String.split_on_char '\n' s in
  (* Header + 4 process rows (and a trailing empty line). *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  Alcotest.(check bool) "has sender marks" true (String.contains s '*');
  Alcotest.(check bool) "has header labels" true
    (String.length (List.hd lines) > 0);
  List.iteri
    (fun i line ->
      if i >= 1 && i <= 4 then
        Alcotest.(check bool)
          (Printf.sprintf "row %d starts with P%d" i i)
          true
          (String.length line >= 2 && line.[0] = 'P'))
    lines

let test_diagram_well_formed =
  qtest ~count:150 "rendered diagram is structurally sound" Gen.computation
    Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let rendering = Diagram.render trace in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' rendering)
      in
      (* Header + one row per process. *)
      List.length lines = Trace.n trace + 1
      && begin
           let rows = List.tl lines in
           let count ch line =
             String.fold_left
               (fun acc c -> if c = ch then acc + 1 else acc)
               0 line
           in
           let total ch = List.fold_left (fun a l -> a + count ch l) 0 rows in
           (* One sender mark per message, one arrowhead per message, one
              hash per internal event. *)
           total '*' = Trace.message_count trace
           && total 'v' + total '^' = Trace.message_count trace
           && total '#' = Trace.internal_count trace
         end)

let test_diagram_timestamps () =
  let t = Examples.fig6 () in
  let vectors = Array.make 6 [| 0; 0; 0 |] in
  let s = Diagram.render_with_timestamps t vectors in
  Alcotest.(check bool) "contains vector text" true
    (String.length s > 0
    && String.length s > String.length (Diagram.render t) - 50)

(* ---------- Trace_io ---------- *)

module Trace_io = Synts_sync.Trace_io

let test_io_roundtrip =
  qtest "serialization round-trips" Gen.computation Gen.computation_print
    (fun c ->
      let _, trace = Gen.build_computation c in
      match Trace_io.of_string (Trace_io.to_string trace) with
      | Ok t' -> Trace.steps t' = Trace.steps trace && Trace.n t' = Trace.n trace
      | Error _ -> false)

let test_io_format () =
  let trace = Trace.of_steps_exn ~n:3 [ Send (0, 2); Local 1 ] in
  let s = Trace_io.to_string trace in
  Alcotest.(check string) "exact format" "synts-trace 1\nn 3\ns 0 2\nl 1\n" s

let test_io_comments_and_blanks () =
  let text = "synts-trace 1\n\n# a comment\nn 2\ns 0 1 # inline comment\n\nl 0\n" in
  match Trace_io.of_string text with
  | Ok t ->
      Alcotest.(check int) "messages" 1 (Trace.message_count t);
      Alcotest.(check int) "internals" 1 (Trace.internal_count t)
  | Error e -> Alcotest.fail e

let test_io_errors () =
  let cases =
    [
      ("s 0 1\n", "steps before n");
      ("n 2\nn 3\n", "duplicate n");
      ("n 2\ns 0\n", "malformed message");
      ("n 2\nx 1\n", "unknown directive");
      ("n two\n", "bad count");
      ("n 2\ns 0 0\n", "self message");
    ]
  in
  List.iter
    (fun (text, label) ->
      match Trace_io.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ label))
    cases

let test_io_never_raises =
  qtest ~count:300 "parser never raises on junk"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 80))
    (fun s -> String.escaped s)
    (fun junk ->
      match Trace_io.of_string junk with Ok _ | Error _ -> true)

let test_io_file_roundtrip () =
  let trace = Trace.of_steps_exn ~n:4 [ Send (0, 1); Local 2; Send (2, 3) ] in
  let path = Filename.temp_file "synts" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path trace;
      match Trace_io.load path with
      | Ok t -> Alcotest.(check bool) "same" true (Trace.steps t = Trace.steps trace)
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "sync"
    [
      ( "trace-io",
        [
          Alcotest.test_case "format" `Quick test_io_format;
          Alcotest.test_case "comments/blanks" `Quick
            test_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          test_io_roundtrip;
          test_io_never_raises;
        ] );
      ( "trace",
        [
          Alcotest.test_case "build" `Quick test_trace_build;
          Alcotest.test_case "rejects" `Quick test_trace_rejects;
          Alcotest.test_case "histories" `Quick test_trace_histories;
          Alcotest.test_case "restrict to messages" `Quick
            test_restrict_messages;
          Alcotest.test_case "concat" `Quick test_concat;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "stated relations" `Quick test_fig1_relations;
          Alcotest.test_case "chain corner cases" `Quick
            test_chain_between_none;
        ] );
      ( "message-poset",
        [ test_poset_matches_oracle; test_linearization_independence ] );
      ( "lemma1",
        [
          test_lemma1_star_triangle;
          Alcotest.test_case "converse witnesses" `Quick test_lemma1_converse;
        ] );
      ( "happened-before",
        [
          Alcotest.test_case "through message" `Quick test_hb_basics;
          Alcotest.test_case "concurrent after sync" `Quick
            test_hb_sender_side;
        ] );
      ( "synchronizability",
        [
          Alcotest.test_case "crown rejected" `Quick test_crown_not_synchronous;
          Alcotest.test_case "respects" `Quick test_respects_rejects;
          Alcotest.test_case "async validation" `Quick test_async_make_rejects;
          test_sync_traces_are_synchronous;
          test_to_trace_roundtrip;
        ] );
      ( "diagram",
        [
          Alcotest.test_case "figure 1 rendering" `Quick test_diagram_fig1;
          Alcotest.test_case "timestamp rendering" `Quick
            test_diagram_timestamps;
          test_diagram_well_formed;
        ] );
    ]
