(* Mutation testing of the validators and the schemes' sensitivity.

   The correctness experiments all reduce to "the validator reported ok" —
   which is only convincing if the validator actually catches wrong
   timestamps. These tests corrupt correct outputs in controlled ways and
   assert the validators notice, and likewise check that breaking the
   algorithm's ingredients (wrong group, skipped merge, skipped increment)
   breaks exactness. *)

module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Internal_events = Synts_core.Internal_events
module Validate = Synts_check.Validate
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let mutation_gen =
  QCheck2.Gen.(
    let* c = Gen.computation in
    let* victim = int_bound 10_000 in
    let* component = int_bound 10_000 in
    let* delta = oneofl [ -2; -1; 1; 2; 5 ] in
    return (c, victim, component, delta))

let mutation_print (c, v, k, d) =
  Printf.sprintf "%s victim=%d comp=%d delta=%d" (Gen.computation_print c) v k d

(* A corrupted vector must flip at least one pair's classification, and
   the validator must therefore report the trace as broken — unless the
   mutation happens to produce a consistent relabelling, which for a
   single-component bump of one message is only possible when that message
   is unconstrained (no other message to compare against). *)
let test_vector_mutation_detected =
  qtest ~count:250 "validator catches single-entry corruption" mutation_gen
    mutation_print (fun (c, victim, component, delta) ->
      let g, trace = Gen.build_computation c in
      if Trace.message_count trace < 2 then true
      else begin
        let d = Decomposition.best g in
        let ts = Online.timestamp_trace d trace in
        let k = Trace.message_count trace in
        let victim = victim mod k in
        let component = component mod Vector.size ts.(0) in
        let mutated = Array.map Vector.copy ts in
        mutated.(victim).(component) <-
          max 0 (mutated.(victim).(component) + delta);
        if Array.for_all2 Vector.equal mutated ts then true
        else begin
          (* Did the mutation actually change some pair's classification? *)
          let changed = ref false in
          for i = 0 to k - 1 do
            for j = 0 to k - 1 do
              if
                i <> j
                && Vector.lt ts.(i) ts.(j)
                   <> Vector.lt mutated.(i) mutated.(j)
              then changed := true
            done
          done;
          let verdict = Validate.message_timestamps trace mutated in
          (* The validator flags the trace iff a classification changed. *)
          Validate.ok verdict = not !changed
        end
      end)

(* Breaking the algorithm: use the wrong group index (rotate by one). *)
let test_wrong_group_breaks =
  qtest ~count:100 "incrementing the wrong component breaks exactness"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Decomposition.best g in
      let dim = Decomposition.size d in
      if dim < 2 || Trace.message_count trace < 4 then true
      else begin
        let n = Trace.n trace in
        let local = Array.init n (fun _ -> Vector.zero dim) in
        let out = Array.make (Trace.message_count trace) [||] in
        Array.iter
          (fun (m : Trace.message) ->
            let v = Vector.merge local.(m.Trace.src) local.(m.Trace.dst) in
            let wrong =
              (Decomposition.group_of_edge d m.Trace.src m.Trace.dst + 1)
              mod dim
            in
            Vector.incr v wrong;
            local.(m.Trace.src) <- Vector.copy v;
            local.(m.Trace.dst) <- v;
            out.(m.Trace.id) <- Vector.copy v)
          (Trace.messages trace);
        (* With the wrong component the encoding may or may not survive by
           luck on tiny runs; over the generator's distribution it must
           fail at least sometimes. Here we only require soundness of the
           check itself: if the validator says ok, the vectors really do
           encode the poset. *)
        let verdict = Validate.message_timestamps trace out in
        let poset = Message_poset.of_trace trace in
        let really_ok = ref true in
        for i = 0 to Poset.size poset - 1 do
          for j = 0 to Poset.size poset - 1 do
            if i <> j && Poset.lt poset i j <> Vector.lt out.(i) out.(j) then
              really_ok := false
          done
        done;
        Validate.ok verdict = !really_ok
      end)

(* Skipping the merge (no exchange of vectors) must be caught whenever the
   computation has any cross-channel causality. *)
let test_no_merge_breaks () =
  let g = Topology.star 3 in
  let d = Decomposition.best g in
  (* The second message's sender (P2) knows nothing; only the receiver's
     vector carries m0 — exactly what a merge-less mutant drops. *)
  let trace = Trace.of_steps_exn ~n:3 [ Send (0, 1); Send (2, 0) ] in
  let dim = Decomposition.size d in
  let local = Array.init 3 (fun _ -> Vector.zero dim) in
  let out = Array.make 2 [||] in
  Array.iter
    (fun (m : Trace.message) ->
      (* BROKEN: each side increments its own copy without merging. *)
      let v = Vector.copy local.(m.Trace.src) in
      Vector.incr v (Decomposition.group_of_edge d m.Trace.src m.Trace.dst);
      local.(m.Trace.src) <- Vector.copy v;
      local.(m.Trace.dst) <- Vector.copy v;
      out.(m.Trace.id) <- v)
    (Trace.messages trace);
  let verdict = Validate.message_timestamps trace out in
  Alcotest.(check bool) "merge-less protocol detected" false
    (Validate.ok verdict)

(* Skipping the increment must be caught: all timestamps collapse. *)
let test_no_increment_breaks () =
  let g = Topology.star 3 in
  let d = Decomposition.best g in
  let trace = Trace.of_steps_exn ~n:3 [ Send (0, 1); Send (0, 2) ] in
  let out = Array.make 2 (Vector.zero (Decomposition.size d)) in
  let verdict = Validate.message_timestamps trace out in
  Alcotest.(check bool) "increment-less protocol detected" false
    (Validate.ok verdict)

(* Internal-event stamps: corrupting the counter of a later same-segment
   event must be caught. *)
let test_internal_mutation_detected () =
  let trace = Trace.of_steps_exn ~n:2 [ Local 0; Local 0 ] in
  let d = Decomposition.best (Topology.star 2) in
  let stamps = Internal_events.of_trace d trace in
  let mutated = Array.copy stamps in
  mutated.(1) <- { (stamps.(1)) with Internal_events.counter = 0 };
  (* Now both events claim counter 0: order is lost. *)
  let verdict = Validate.internal_stamps trace mutated in
  Alcotest.(check bool) "counter corruption detected" false
    (Validate.ok verdict)

(* The Lamport soundness validator must reject a decreasing assignment. *)
let test_lamport_validator_rejects () =
  let trace = Trace.of_steps_exn ~n:2 [ Send (0, 1); Send (1, 0) ] in
  let verdict = Validate.sound_only trace [| 5; 3 |] in
  Alcotest.(check bool) "decreasing scalars rejected" false
    (Validate.ok verdict)

let () =
  Alcotest.run "mutation"
    [
      ( "validator-sensitivity",
        [
          Alcotest.test_case "merge-less protocol" `Quick test_no_merge_breaks;
          Alcotest.test_case "increment-less protocol" `Quick
            test_no_increment_breaks;
          Alcotest.test_case "internal counter corruption" `Quick
            test_internal_mutation_detected;
          Alcotest.test_case "lamport validator" `Quick
            test_lamport_validator_rejects;
          test_vector_mutation_detected;
          test_wrong_group_breaks;
        ] );
    ]
