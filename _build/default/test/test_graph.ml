module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Vertex_cover = Synts_graph.Vertex_cover
module Decomposition = Synts_graph.Decomposition
module Gen = Synts_test_support.Gen

let qtest ?(count = 200) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- Graph basics ---------- *)

let test_graph_build () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 0); (1, 2) ] in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "m collapses duplicates" 3 (Graph.m g);
  Alcotest.(check bool) "has 1-2" true (Graph.has_edge g 1 2);
  Alcotest.(check bool) "has 2-1" true (Graph.has_edge g 2 1);
  Alcotest.(check bool) "no 3-4" false (Graph.has_edge g 3 4);
  Alcotest.(check (list int)) "neighbors 1" [ 0; 2 ] (Graph.neighbors g 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0)

let test_graph_rejects () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph: self-loop")
    (fun () -> ignore (Graph.of_edges 3 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph: vertex out of range") (fun () ->
      ignore (Graph.of_edges 3 [ (0, 3) ]))

let test_graph_remove () =
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  let g' = Graph.remove_vertex_edges g 0 in
  Alcotest.(check int) "only 1-2 left" 1 (Graph.m g');
  Alcotest.(check bool) "1-2 kept" true (Graph.has_edge g' 1 2);
  Alcotest.(check int) "original untouched" 4 (Graph.m g);
  let g'' = Graph.remove_edge g 0 1 in
  Alcotest.(check int) "one edge gone" 3 (Graph.m g'')

let test_graph_components () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check (list (list int)))
    "components"
    [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ]
    (Graph.connected_components g);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g);
  Alcotest.(check bool) "forest" true (Graph.is_forest g);
  let g = Graph.add_edge g 0 2 in
  Alcotest.(check bool) "cycle kills forest" false (Graph.is_forest g)

let test_star_recognition () =
  Alcotest.(check (option int)) "star center" (Some 0)
    (Graph.star_center (Topology.star 6));
  Alcotest.(check (option int)) "single edge star" (Some 1)
    (Graph.star_center (Graph.of_edges 4 [ (1, 3) ]));
  Alcotest.(check (option int)) "path of 3 is a star (middle)" (Some 1)
    (Graph.star_center (Graph.of_edges 3 [ (0, 1); (1, 2) ]));
  Alcotest.(check (option int)) "path of 4 is not" None
    (Graph.star_center (Topology.path 4));
  Alcotest.(check bool) "triangle is not a star" false
    (Graph.is_star (Topology.triangle ()))

let test_triangle_recognition () =
  Alcotest.(check bool) "triangle" true
    (Graph.is_triangle (Topology.triangle ()));
  Alcotest.(check bool) "path not triangle" false
    (Graph.is_triangle (Topology.path 4));
  let g = Graph.of_edges 6 [ (2, 4); (4, 5); (2, 5) ] in
  (match Graph.triangle_of g with
  | Some t -> Alcotest.(check (triple int int int)) "vertices" (2, 4, 5) t
  | None -> Alcotest.fail "expected a triangle");
  Alcotest.(check (list int)) "triangle through" [ 5 ]
    (Graph.find_triangle_through g 2 4)

let test_adjacent_edge_count () =
  let g = Topology.star 5 in
  Alcotest.(check int) "star edge adjacency" 3
    (Graph.adjacent_edge_count g (0, 1))

(* ---------- Topology generators ---------- *)

let test_topology_sizes () =
  let checks =
    [
      ("star 7", Topology.star 7, 7, 6);
      ("triangle", Topology.triangle (), 3, 3);
      ("complete 6", Topology.complete 6, 6, 15);
      ("path 5", Topology.path 5, 5, 4);
      ("ring 5", Topology.ring 5, 5, 5);
      ("grid 3x4", Topology.grid 3 4, 12, 17);
      ("cs 2x5", Topology.client_server ~servers:2 ~clients:5, 7, 10);
      ("triangles 4", Topology.disjoint_triangles 4, 12, 12);
      ("btree 2x3", Topology.balanced_tree ~arity:2 ~depth:3, 15, 14);
      ("fig4", Topology.fig4_tree (), 20, 19);
      ("fig2b", Topology.fig2b (), 11, 13);
    ]
  in
  List.iter
    (fun (name, g, n, m) ->
      Alcotest.(check int) (name ^ " n") n (Graph.n g);
      Alcotest.(check int) (name ^ " m") m (Graph.m g))
    checks

let test_random_tree_is_tree =
  qtest "random trees are connected forests"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 1 40))
    (fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
    (fun (seed, n) ->
      let g = Topology.random_tree (Synts_util.Rng.create seed) n in
      Graph.is_forest g && Graph.is_connected g && Graph.m g = n - 1)

let test_random_connected =
  qtest "random_connected is connected"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 30))
    (fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
    (fun (seed, n) ->
      let g = Topology.random_connected (Synts_util.Rng.create seed) n 0.2 in
      Graph.is_connected g && Graph.m g >= n - 1)

let test_graph_file_roundtrip =
  qtest "topology file format round-trips" Gen.small_graph
    Gen.small_graph_print (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      match Topology.graph_of_string (Topology.graph_to_string g) with
      | Ok g' -> Graph.equal g g'
      | Error _ -> false)

let test_graph_file_errors () =
  let cases =
    [ "e 0 1\n"; "n 2\nn 3\n"; "n x\n"; "n 2\ne 0\n"; "n 2\nz 1 2\n";
      "n 2\ne 0 5\n" ]
  in
  List.iter
    (fun text ->
      match Topology.graph_of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted: " ^ String.escaped text))
    cases

let test_spec_roundtrip () =
  List.iter
    (fun (s, spec) ->
      match Topology.spec_of_string s with
      | Ok spec' ->
          Alcotest.(check string) ("roundtrip " ^ s)
            (Topology.spec_to_string spec)
            (Topology.spec_to_string spec')
      | Error e -> Alcotest.fail e)
    Topology.all_families;
  match Topology.spec_of_string "nonsense:x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject nonsense"

(* ---------- Vertex cover ---------- *)

let test_cover_known () =
  let star = Topology.star 8 in
  Alcotest.(check (list int)) "star greedy" [ 0 ] (Vertex_cover.greedy star);
  (match Vertex_cover.exact star with
  | Some c -> Alcotest.(check int) "star exact size" 1 (List.length c)
  | None -> Alcotest.fail "exact should finish");
  let k4 = Topology.complete 4 in
  (match Vertex_cover.exact k4 with
  | Some c -> Alcotest.(check int) "K4 exact size" 3 (List.length c)
  | None -> Alcotest.fail "exact should finish");
  let cs = Topology.client_server ~servers:3 ~clients:10 in
  match Vertex_cover.exact cs with
  | Some c -> Alcotest.(check (list int)) "servers cover" [ 0; 1; 2 ] c
  | None -> Alcotest.fail "exact should finish"

let build_small (n, edges) = Graph.of_edges n edges

let test_cover_validity =
  qtest "greedy and 2-approx produce covers" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      Vertex_cover.is_cover g (Vertex_cover.greedy g)
      && Vertex_cover.is_cover g (Vertex_cover.two_approx g))

let test_cover_exact_optimal =
  qtest ~count:120 "exact <= heuristics and >= matching bound" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      match Vertex_cover.exact g with
      | None -> QCheck2.assume_fail ()
      | Some c ->
          Vertex_cover.is_cover g c
          && List.length c <= List.length (Vertex_cover.greedy g)
          && List.length c <= List.length (Vertex_cover.two_approx g)
          && List.length c >= Vertex_cover.size_lower_bound g)

let test_two_approx_ratio =
  qtest ~count:120 "2-approx within factor 2" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      match Vertex_cover.exact g with
      | None -> QCheck2.assume_fail ()
      | Some c ->
          List.length (Vertex_cover.two_approx g) <= 2 * max 1 (List.length c))

(* ---------- Edge decomposition ---------- *)

let decomposition_valid g d =
  match Decomposition.make g (Decomposition.groups d) with
  | Ok _ -> true
  | Error _ -> false

let test_fig3_k5 () =
  let k5 = Topology.complete 5 in
  let a =
    Decomposition.make_exn k5
      [
        Star { center = 0; leaves = [ 1; 2; 3; 4 ] };
        Star { center = 1; leaves = [ 2; 3; 4 ] };
        Triangle (2, 3, 4);
      ]
  in
  Alcotest.(check int) "3a size" 3 (Decomposition.size a);
  let b =
    Decomposition.make_exn k5
      [
        Star { center = 0; leaves = [ 1; 2; 3; 4 ] };
        Star { center = 1; leaves = [ 2; 3; 4 ] };
        Star { center = 2; leaves = [ 3; 4 ] };
        Star { center = 3; leaves = [ 4 ] };
      ]
  in
  Alcotest.(check int) "3b size" 4 (Decomposition.size b);
  Alcotest.(check int) "paper algorithm on K5" 3
    (Decomposition.size (Decomposition.paper k5));
  match Decomposition.exact k5 with
  | Some e -> Alcotest.(check int) "exact K5" 3 (Decomposition.size e)
  | None -> Alcotest.fail "exact should finish on K5"

let test_fig4_tree () =
  let g = Topology.fig4_tree () in
  let d = Decomposition.paper g in
  Alcotest.(check int) "three stars" Topology.fig4_expected_groups
    (Decomposition.size d);
  Alcotest.(check int) "all stars" 3 (Decomposition.stars d);
  Alcotest.(check bool) "valid" true (decomposition_valid g d)

let test_fig8_run () =
  let g = Topology.fig2b () in
  let steps = Decomposition.paper_trace g in
  let phases = List.map (fun s -> s.Decomposition.phase) steps in
  (* The narrative of Figure 8: step 1 emits a star, step 2 a triangle,
     step 3 two stars, then the loop back to step 1 emits the last star. *)
  Alcotest.(check (list int)) "phase sequence" [ 1; 2; 3; 3; 1 ] phases;
  let d = Decomposition.paper g in
  Alcotest.(check int) "algorithm size" 5 (Decomposition.size d);
  (match Decomposition.exact g with
  | Some e ->
      Alcotest.(check int) "optimal size" 5 (Decomposition.size e);
      Alcotest.(check int) "optimal stars" 4 (Decomposition.stars e);
      Alcotest.(check int) "optimal triangles" 1 (Decomposition.triangles e)
  | None -> Alcotest.fail "exact should finish on fig2b");
  (* The final step-1 star must contain edge (j, k) = (9, 10). *)
  match List.rev steps with
  | last :: _ ->
      let edges = Decomposition.edges_of_group last.Decomposition.group in
      Alcotest.(check bool) "contains (j,k)" true (List.mem (9, 10) edges)
  | [] -> Alcotest.fail "no steps"

let test_decomposition_make_rejects () =
  let k3 = Topology.triangle () in
  (match Decomposition.make k3 [ Star { center = 0; leaves = [ 1; 2 ] } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete cover accepted");
  (match
     Decomposition.make k3
       [
         Star { center = 0; leaves = [ 1; 2 ] };
         Star { center = 1; leaves = [ 0; 2 ] };
       ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlapping groups accepted");
  match
    Decomposition.make k3
      [
        Star { center = 0; leaves = [ 1; 2 ] };
        Star { center = 1; leaves = [ 2 ] };
        Star { center = 2; leaves = [ 0 ] };
      ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "edge (0,2) used twice via star@2 leaf 0"

let test_group_of_edge () =
  let k5 = Topology.complete 5 in
  let d = Decomposition.paper k5 in
  Graph.iter_edges
    (fun u v ->
      let g = Decomposition.group_of_edge d u v in
      let grp = List.nth (Decomposition.groups d) g in
      Alcotest.(check bool)
        (Printf.sprintf "edge (%d,%d) in its group" u v)
        true
        (List.mem (u, v) (Decomposition.edges_of_group grp)))
    k5;
  Alcotest.check_raises "missing edge" Not_found (fun () ->
      ignore
        (Decomposition.group_of_edge (Decomposition.paper (Topology.star 3)) 1 2))

let test_constructions_deterministic =
  qtest "every construction is deterministic" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      let same f = Decomposition.groups (f g) = Decomposition.groups (f g) in
      same Decomposition.paper
      && same Decomposition.sequential
      && same Decomposition.best
      && same Decomposition.triangles_first)

let test_paper_trace_partitions =
  qtest "paper_trace emissions partition the edge set" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      let emitted =
        List.concat_map
          (fun s -> Decomposition.edges_of_group s.Decomposition.group)
          (Decomposition.paper_trace g)
      in
      List.sort compare emitted = Graph.edges g)

let test_paper_valid =
  qtest "paper algorithm yields valid decompositions" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      decomposition_valid g (Decomposition.paper g))

let test_sequential_valid_and_bounded =
  qtest "sequential decomposition valid and <= max(1, N-2)" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      let d = Decomposition.sequential g in
      decomposition_valid g d
      && (Graph.m g = 0 || Decomposition.size d <= max 1 (Graph.n g - 2)))

let test_vc_decomposition_valid =
  qtest "vertex-cover stars form valid decompositions" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      match Decomposition.of_vertex_cover g (Vertex_cover.two_approx g) with
      | Ok d ->
          decomposition_valid g d
          && Decomposition.triangles d = 0
          && Decomposition.size d <= List.length (Vertex_cover.two_approx g)
      | Error _ -> false)

let test_vc_decomposition_rejects_non_cover () =
  let k3 = Topology.triangle () in
  match Decomposition.of_vertex_cover k3 [ 0 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-cover accepted"

let test_paper_ratio_2 =
  qtest ~count:150 "Theorem 6: paper algorithm within 2x of optimum"
    Gen.small_graph Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      match Decomposition.exact g with
      | None -> QCheck2.assume_fail ()
      | Some opt ->
          decomposition_valid g opt
          && Decomposition.size (Decomposition.paper g)
             <= 2 * max 1 (Decomposition.size opt))

let test_paper_optimal_on_forests =
  qtest ~count:150 "Theorem 7: optimal on forests"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 10))
    (fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
    (fun (seed, n) ->
      let g = Topology.random_tree (Synts_util.Rng.create seed) n in
      match Decomposition.exact g with
      | None -> QCheck2.assume_fail ()
      | Some opt ->
          Decomposition.size (Decomposition.paper g) = Decomposition.size opt)

let test_exact_lower_bound =
  qtest ~count:100 "exact >= matching lower bound" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      match Decomposition.exact g with
      | None -> QCheck2.assume_fail ()
      | Some opt ->
          Graph.m g = 0
          || Decomposition.size opt >= Decomposition.min_size_lower_bound g)

let test_disjoint_triangles_gap () =
  let g = Topology.disjoint_triangles 5 in
  (match Decomposition.exact g with
  | Some opt ->
      Alcotest.(check int) "alpha = t" 5 (Decomposition.size opt);
      Alcotest.(check int) "all triangles" 5 (Decomposition.triangles opt)
  | None -> Alcotest.fail "exact should finish");
  (match Decomposition.of_vertex_cover g (Vertex_cover.two_approx g) with
  | Ok d -> Alcotest.(check int) "beta = 2t" 10 (Decomposition.size d)
  | Error _ -> Alcotest.fail "cover decomposition failed");
  Alcotest.(check int) "paper finds triangles" 5
    (Decomposition.size (Decomposition.paper g))

let test_triangles_first =
  qtest "triangles_first yields valid decompositions" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      decomposition_valid g (Decomposition.triangles_first g))

let test_triangles_first_on_triangles () =
  let g = Topology.disjoint_triangles 6 in
  let d = Decomposition.triangles_first g in
  Alcotest.(check int) "finds all 6" 6 (Decomposition.size d);
  Alcotest.(check int) "all triangles" 6 (Decomposition.triangles d)

let test_improve_merges_split_triangles () =
  (* The pure-star decomposition splits every triangle into two stars;
     improve must stitch them back. *)
  let g = Topology.disjoint_triangles 4 in
  match Decomposition.of_vertex_cover g (Vertex_cover.two_approx g) with
  | Error e -> Alcotest.fail e
  | Ok stars ->
      Alcotest.(check int) "stars before" 8 (Decomposition.size stars);
      let better = Decomposition.improve g stars in
      Alcotest.(check int) "triangles after" 4 (Decomposition.size better);
      Alcotest.(check int) "all triangles" 4 (Decomposition.triangles better)

let test_improve_properties =
  qtest "improve keeps validity and never grows" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      let d = Decomposition.sequential g in
      let better = Decomposition.improve g d in
      decomposition_valid g better
      && Decomposition.size better <= Decomposition.size d)

let test_best_never_worse =
  qtest "best <= each polynomial construction" Gen.small_graph
    Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      let b = Decomposition.size (Decomposition.best g) in
      b <= Decomposition.size (Decomposition.paper g)
      && b <= Decomposition.size (Decomposition.sequential g))

let test_theorem5_bound =
  (* Theorem 5 is existential: the optimal-cover star decomposition has
     beta groups and the sequential one at most N-2, so the smaller of the
     two achieves min(beta, N-2). *)
  qtest ~count:150 "Theorem 5: a decomposition of size <= min(beta, N-2) exists"
    Gen.small_graph Gen.small_graph_print (fun sg ->
      let g = build_small sg in
      if Graph.m g = 0 then true
      else
        match Vertex_cover.exact g with
        | None -> QCheck2.assume_fail ()
        | Some c -> (
            match Decomposition.of_vertex_cover g c with
            | Error _ -> false
            | Ok stars ->
                min
                  (Decomposition.size stars)
                  (Decomposition.size (Decomposition.sequential g))
                <= max 1 (min (List.length c) (Graph.n g - 2))))

let test_complete_graph_worst_case () =
  (* The paper calls the complete graph the worst case: N-3 stars and one
     triangle, i.e. exactly N-2 groups, and no decomposition does better. *)
  List.iter
    (fun n ->
      match Decomposition.exact (Topology.complete n) with
      | Some opt ->
          Alcotest.(check int)
            (Printf.sprintf "K%d optimum" n)
            (n - 2) (Decomposition.size opt)
      | None -> Alcotest.fail "exact should finish")
    [ 4; 5; 6; 7 ]

let test_client_server_constant () =
  List.iter
    (fun clients ->
      let g = Topology.client_server ~servers:3 ~clients in
      Alcotest.(check int)
        (Printf.sprintf "3 servers, %d clients" clients)
        3
        (Decomposition.size (Decomposition.best g)))
    [ 4; 16; 64 ]

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "build" `Quick test_graph_build;
          Alcotest.test_case "rejects bad edges" `Quick test_graph_rejects;
          Alcotest.test_case "remove" `Quick test_graph_remove;
          Alcotest.test_case "components" `Quick test_graph_components;
          Alcotest.test_case "star recognition" `Quick test_star_recognition;
          Alcotest.test_case "triangle recognition" `Quick
            test_triangle_recognition;
          Alcotest.test_case "adjacent edge count" `Quick
            test_adjacent_edge_count;
        ] );
      ( "topology",
        [
          Alcotest.test_case "generator sizes" `Quick test_topology_sizes;
          Alcotest.test_case "spec parsing" `Quick test_spec_roundtrip;
          Alcotest.test_case "file format errors" `Quick test_graph_file_errors;
          test_graph_file_roundtrip;
          test_random_tree_is_tree;
          test_random_connected;
        ] );
      ( "vertex-cover",
        [
          Alcotest.test_case "known covers" `Quick test_cover_known;
          test_cover_validity;
          test_cover_exact_optimal;
          test_two_approx_ratio;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "figure 3 (K5)" `Quick test_fig3_k5;
          Alcotest.test_case "figure 4 (tree)" `Quick test_fig4_tree;
          Alcotest.test_case "figure 8 (algorithm run)" `Quick test_fig8_run;
          Alcotest.test_case "make rejects bad input" `Quick
            test_decomposition_make_rejects;
          Alcotest.test_case "group_of_edge" `Quick test_group_of_edge;
          Alcotest.test_case "disjoint triangles gap" `Quick
            test_disjoint_triangles_gap;
          Alcotest.test_case "client-server constant size" `Quick
            test_client_server_constant;
          Alcotest.test_case "complete graph worst case" `Quick
            test_complete_graph_worst_case;
          test_constructions_deterministic;
          test_paper_trace_partitions;
          test_paper_valid;
          test_sequential_valid_and_bounded;
          test_vc_decomposition_valid;
          Alcotest.test_case "of_vertex_cover rejects" `Quick
            test_vc_decomposition_rejects_non_cover;
          test_paper_ratio_2;
          test_paper_optimal_on_forests;
          test_exact_lower_bound;
          test_best_never_worse;
          test_theorem5_bound;
          Alcotest.test_case "improve merges split triangles" `Quick
            test_improve_merges_split_triangles;
          test_improve_properties;
          Alcotest.test_case "triangles-first on triangle family" `Quick
            test_triangles_first_on_triangles;
          test_triangles_first;
        ] );
    ]
