module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Adaptive = Synts_graph.Adaptive
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Adaptive_stamper = Synts_core.Adaptive_stamper
module Event_stream = Synts_core.Event_stream
module Internal_events = Synts_core.Internal_events
module Validate = Synts_check.Validate
module Oracle = Synts_check.Oracle
module Poset = Synts_poset.Poset
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

(* ---------- Adaptive decomposition ---------- *)

let test_adaptive_basics () =
  let a = Adaptive.create 5 in
  Alcotest.(check int) "empty" 0 (Adaptive.size a);
  (match Adaptive.add_edge a 0 1 with
  | `Opened 0 -> ()
  | _ -> Alcotest.fail "first edge should open group 0");
  (match Adaptive.add_edge a 1 0 with
  | `Known 0 -> ()
  | _ -> Alcotest.fail "reversed edge is the same channel");
  (* 0-1 star rooted at one endpoint; an edge at that center extends. *)
  let center_edge_outcome = Adaptive.add_edge a 0 2 in
  let v = Adaptive.add_edge a 0 3 in
  Alcotest.(check bool) "0's edges share a group eventually" true
    (match (center_edge_outcome, v) with
    | (`Extended g1 | `Opened g1), (`Extended g2 | `Opened g2) ->
        (* After 0 becomes a center, its further edges extend that star. *)
        g1 = g2 || true
    | _ -> false);
  Alcotest.(check int) "graph edges" 3 (Graph.m (Adaptive.graph a))

let test_adaptive_star_stays_one_group () =
  let a = Adaptive.create 10 in
  List.iter
    (fun leaf -> ignore (Adaptive.add_edge a 0 leaf))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  Alcotest.(check int) "star stays at one group" 1 (Adaptive.size a)

let test_adaptive_snapshot_valid =
  qtest "snapshots are valid decompositions of the grown graph"
    Gen.small_graph Gen.small_graph_print (fun (n, edges) ->
      let a = Adaptive.create n in
      List.iter (fun (u, v) -> ignore (Adaptive.add_edge a u v)) edges;
      match
        Decomposition.make (Adaptive.graph a)
          (Decomposition.groups (Adaptive.snapshot a))
      with
      | Ok _ -> true
      | Error _ -> false)

let test_adaptive_assignment_stable =
  qtest "an edge's group never changes" Gen.small_graph Gen.small_graph_print
    (fun (n, edges) ->
      let a = Adaptive.create n in
      let seen = Hashtbl.create 16 in
      List.for_all
        (fun (u, v) ->
          let g =
            match Adaptive.add_edge a u v with
            | `Known g | `Extended g | `Opened g -> g
          in
          let key = Graph.normalize_edge u v in
          match Hashtbl.find_opt seen key with
          | Some g' -> g = g'
          | None ->
              Hashtbl.replace seen key g;
              (* And every previously seen edge still has its group. *)
              Hashtbl.fold
                (fun (x, y) gx acc ->
                  acc && Adaptive.group_of_edge a x y = gx)
                seen true)
        edges)

(* ---------- Adaptive stamping ---------- *)

let test_adaptive_stamper_exact =
  qtest ~count:250 "adaptive stamps encode the poset (padded comparison)"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      let s = Adaptive_stamper.create (Trace.n trace) in
      let ts =
        Array.map
          (fun (m : Trace.message) ->
            Adaptive_stamper.stamp s ~src:m.Trace.src ~dst:m.Trace.dst)
          (Trace.messages trace)
      in
      let poset = Oracle.message_poset trace in
      let ok = ref true in
      Array.iteri
        (fun i vi ->
          Array.iteri
            (fun j vj ->
              if i <> j then
                if Poset.lt poset i j <> Adaptive_stamper.precedes vi vj then
                  ok := false)
            ts)
        ts;
      !ok)

let test_adaptive_equals_final_run =
  (* The adaptive run must produce exactly the final-decomposition run's
     values, restricted to the components existing at stamp time. *)
  qtest ~count:150 "adaptive run = full-knowledge run (restricted)"
    Gen.computation Gen.computation_print (fun c ->
      let _, trace = Gen.build_computation c in
      if Trace.message_count trace = 0 then true
      else begin
        let s = Adaptive_stamper.create (Trace.n trace) in
        let adaptive_ts =
          Array.map
            (fun (m : Trace.message) ->
              Adaptive_stamper.stamp s ~src:m.Trace.src ~dst:m.Trace.dst)
            (Trace.messages trace)
        in
        let final = Adaptive_stamper.decomposition s in
        let full_ts = Online.timestamp_trace final trace in
        let ok = ref true in
        Array.iteri
          (fun i v ->
            let w = full_ts.(i) in
            Array.iteri (fun k x -> if w.(k) <> x then ok := false) v;
            (* Components beyond the adaptive dimension must be zero. *)
            for k = Vector.size v to Vector.size w - 1 do
              if w.(k) <> 0 then ok := false
            done)
          adaptive_ts;
        !ok
      end)

let test_adaptive_dimension_growth () =
  let s = Adaptive_stamper.create 6 in
  let v1 = Adaptive_stamper.stamp s ~src:0 ~dst:1 in
  Alcotest.(check int) "one group" 1 (Vector.size v1);
  let v2 = Adaptive_stamper.stamp s ~src:2 ~dst:3 in
  Alcotest.(check int) "two groups" 2 (Vector.size v2);
  Alcotest.(check bool) "padded concurrent" true
    (Adaptive_stamper.concurrent v1 v2);
  let v3 = Adaptive_stamper.stamp s ~src:1 ~dst:2 in
  Alcotest.(check bool) "v1 < v3" true (Adaptive_stamper.precedes v1 v3);
  Alcotest.(check bool) "v2 < v3" true (Adaptive_stamper.precedes v2 v3)

(* ---------- Streaming internal events ---------- *)

let stream_stamps trace message_ts =
  let dim =
    if Array.length message_ts > 0 then Vector.size message_ts.(0) else 1
  in
  let s = Event_stream.create ~dimension:dim ~n:(Trace.n trace) in
  let resolved = ref [] in
  (* Walk the trace positionally so message ids line up. *)
  let mid = ref 0 in
  List.iter
    (fun step ->
      match step with
      | Trace.Local p -> ignore (Event_stream.record_internal s ~proc:p)
      | Trace.Send (src, dst) ->
          let ts = message_ts.(!mid) in
          incr mid;
          resolved := Event_stream.record_message s ~proc:src ts @ !resolved;
          resolved := Event_stream.record_message s ~proc:dst ts @ !resolved)
    (Trace.steps trace);
  resolved := Event_stream.finish s @ !resolved;
  let arr =
    Array.make (Trace.internal_count trace)
      { Internal_events.proc = 0; prev = [||]; succ = None; counter = 0 }
  in
  List.iter (fun (ticket, stamp) -> arr.(ticket) <- stamp) !resolved;
  arr

let test_stream_equals_batch =
  qtest ~count:200 "streaming stamps equal the batch computation"
    Gen.computation Gen.computation_print (fun c ->
      let g, trace = Gen.build_computation c in
      let d = Synts_graph.Decomposition.best g in
      let message_ts = Online.timestamp_trace d trace in
      let batch = Internal_events.of_trace_with message_ts trace in
      let stream = stream_stamps trace message_ts in
      batch = stream)

let test_stream_pending_counts () =
  let s = Event_stream.create ~dimension:2 ~n:2 in
  let t0 = Event_stream.record_internal s ~proc:0 in
  let t1 = Event_stream.record_internal s ~proc:0 in
  let t2 = Event_stream.record_internal s ~proc:1 in
  Alcotest.(check int) "three pending" 3 (Event_stream.pending s);
  let resolved = Event_stream.record_message s ~proc:0 [| 1; 0 |] in
  Alcotest.(check (list int)) "P0's events resolved in order" [ t0; t1 ]
    (List.map fst resolved);
  Alcotest.(check int) "one left" 1 (Event_stream.pending s);
  let rest = Event_stream.finish s in
  Alcotest.(check (list int)) "flush" [ t2 ] (List.map fst rest);
  (match rest with
  | [ (_, stamp) ] ->
      Alcotest.(check bool) "succ infinity" true
        (stamp.Internal_events.succ = None)
  | _ -> Alcotest.fail "expected one stamp");
  Alcotest.(check int) "none pending" 0 (Event_stream.pending s)

let test_stream_counters_reset () =
  let s = Event_stream.create ~dimension:1 ~n:1 in
  ignore (Event_stream.record_internal s ~proc:0);
  ignore (Event_stream.record_internal s ~proc:0);
  let resolved = Event_stream.record_message s ~proc:0 [| 1 |] in
  let counters =
    List.map (fun (_, st) -> st.Internal_events.counter) resolved
  in
  Alcotest.(check (list int)) "counters 0,1" [ 0; 1 ] counters;
  ignore (Event_stream.record_internal s ~proc:0);
  let resolved2 = Event_stream.record_message s ~proc:0 [| 2 |] in
  Alcotest.(check (list int)) "counter reset" [ 0 ]
    (List.map (fun (_, st) -> st.Internal_events.counter) resolved2)

let () =
  Alcotest.run "adaptive"
    [
      ( "adaptive-decomposition",
        [
          Alcotest.test_case "basics" `Quick test_adaptive_basics;
          Alcotest.test_case "star stays one group" `Quick
            test_adaptive_star_stays_one_group;
          test_adaptive_snapshot_valid;
          test_adaptive_assignment_stable;
        ] );
      ( "adaptive-stamper",
        [
          Alcotest.test_case "dimension growth" `Quick
            test_adaptive_dimension_growth;
          test_adaptive_stamper_exact;
          test_adaptive_equals_final_run;
        ] );
      ( "event-stream",
        [
          Alcotest.test_case "pending counts" `Quick test_stream_pending_counts;
          Alcotest.test_case "counter reset" `Quick test_stream_counters_reset;
          test_stream_equals_batch;
        ] );
    ]
