test/test_poset.mli:
