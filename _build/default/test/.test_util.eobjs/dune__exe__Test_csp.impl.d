test/test_csp.ml: Alcotest Array Fun List Printf Synts_check Synts_clock Synts_csp Synts_graph Synts_sync
