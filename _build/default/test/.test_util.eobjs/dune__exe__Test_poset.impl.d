test/test_poset.ml: Alcotest Array Bool Format Fun List Printf QCheck2 QCheck_alcotest String Synts_poset Synts_test_support
