test/test_clock.ml: Alcotest Array Fun List QCheck2 QCheck_alcotest String Synts_check Synts_clock Synts_poset Synts_sync Synts_test_support
