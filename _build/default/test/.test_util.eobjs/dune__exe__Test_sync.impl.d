test/test_sync.ml: Alcotest Array Filename Fun List Option Printf QCheck2 QCheck_alcotest String Synts_check Synts_graph Synts_poset Synts_sync Synts_test_support Synts_util Synts_workload Sys
