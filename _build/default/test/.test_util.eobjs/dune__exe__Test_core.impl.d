test/test_core.ml: Alcotest Array Hashtbl List Option Printf QCheck2 QCheck_alcotest Synts_check Synts_clock Synts_core Synts_graph Synts_poset Synts_sync Synts_test_support Synts_util Synts_workload
