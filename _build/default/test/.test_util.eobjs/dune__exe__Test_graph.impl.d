test/test_graph.ml: Alcotest List Printf QCheck2 QCheck_alcotest String Synts_graph Synts_test_support Synts_util
