test/test_workload.ml: Alcotest Array Printf QCheck2 QCheck_alcotest Synts_graph Synts_poset Synts_sync Synts_util Synts_workload
