module Trace = Synts_sync.Trace
module Poset = Synts_poset.Poset
module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Frontier = Synts_monitor.Frontier
module Stats = Synts_monitor.Stats
module Oracle = Synts_check.Oracle
module Gen = Synts_test_support.Gen

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let stamped c =
  let g, trace = Gen.build_computation c in
  let d = Decomposition.best g in
  (trace, Online.timestamp_trace d trace)

(* ---------- Frontier ---------- *)

let test_frontier_basics () =
  let f = Frontier.create () in
  Alcotest.(check int) "empty" 0 (Frontier.size f);
  Alcotest.(check bool) "insert first" true
    (Frontier.insert f ~id:0 [| 1; 0 |] = `Maximal);
  Alcotest.(check bool) "concurrent joins" true
    (Frontier.insert f ~id:1 [| 0; 1 |] = `Maximal);
  Alcotest.(check int) "two maximal" 2 (Frontier.size f);
  (* A successor of both evicts both. *)
  Alcotest.(check bool) "dominating insert" true
    (Frontier.insert f ~id:2 [| 2; 2 |] = `Maximal);
  Alcotest.(check (list int)) "frontier is the top" [ 2 ]
    (List.map fst (Frontier.frontier f));
  (* A stale arrival is reported dominated. *)
  Alcotest.(check bool) "stale arrival" true
    (Frontier.insert f ~id:3 [| 1; 1 |] = `Dominated);
  Alcotest.(check int) "observed counts all" 4 (Frontier.observed f);
  Alcotest.(check bool) "covers past" true (Frontier.covers f [| 2; 1 |]);
  Alcotest.(check bool) "does not cover future" false
    (Frontier.covers f [| 3; 2 |]);
  Alcotest.(check bool) "dominated_by" true (Frontier.dominated_by f [| 1; 0 |])

let test_frontier_duplicate_id () =
  let f = Frontier.create () in
  ignore (Frontier.insert f ~id:7 [| 1 |]);
  match Frontier.insert f ~id:7 [| 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate id accepted"

let test_frontier_matches_poset =
  qtest ~count:200 "frontier = maximal elements of the observed poset"
    Gen.computation Gen.computation_print (fun c ->
      let trace, ts = stamped c in
      let poset = Oracle.message_poset trace in
      let f = Frontier.create () in
      Array.iteri (fun id v -> ignore (Frontier.insert f ~id v)) ts;
      let expected = Poset.maximal_elements poset in
      let got = List.sort compare (List.map fst (Frontier.frontier f)) in
      Trace.message_count trace = 0 || got = expected)

let test_frontier_pairwise_concurrent =
  qtest ~count:150 "frontier elements are pairwise concurrent"
    Gen.computation Gen.computation_print (fun c ->
      let _, ts = stamped c in
      let f = Frontier.create () in
      Array.iteri (fun id v -> ignore (Frontier.insert f ~id v)) ts;
      let front = Frontier.frontier f in
      List.for_all
        (fun (i, v) ->
          List.for_all
            (fun (j, w) -> i = j || Vector.concurrent v w)
            front)
        front)

let test_frontier_out_of_order =
  (* Feeding messages in reverse poset order must still converge to the
     true maxima (late stale messages are dominated). *)
  qtest ~count:100 "out-of-order observation converges" Gen.computation
    Gen.computation_print (fun c ->
      let trace, ts = stamped c in
      if Trace.message_count trace = 0 then true
      else begin
        let poset = Oracle.message_poset trace in
        let f = Frontier.create () in
        for id = Array.length ts - 1 downto 0 do
          ignore (Frontier.insert f ~id ts.(id))
        done;
        List.sort compare (List.map fst (Frontier.frontier f))
        = Poset.maximal_elements poset
      end)

(* ---------- Stats ---------- *)

let longest_chain_oracle poset =
  let n = Poset.size poset in
  let order = Poset.linear_extension poset in
  let best = Array.make n 1 in
  Array.iter
    (fun v ->
      Array.iter
        (fun u -> if Poset.lt poset u v then best.(v) <- max best.(v) (best.(u) + 1))
        order)
    order;
  Array.fold_left max 0 best

let test_stats_counts =
  qtest ~count:200 "pair counts partition all pairs" Gen.computation
    Gen.computation_print (fun c ->
      let trace, ts = stamped c in
      let s = Stats.create () in
      Array.iter (Stats.observe s) ts;
      let m = Trace.message_count trace in
      Stats.messages s = m
      && Stats.ordered_pairs s + Stats.concurrent_pairs s = m * (m - 1) / 2)

let test_stats_match_oracle =
  qtest ~count:200 "ordered count and longest chain match the oracle"
    Gen.computation Gen.computation_print (fun c ->
      let trace, ts = stamped c in
      let poset = Oracle.message_poset trace in
      let s = Stats.create () in
      Array.iter (Stats.observe s) ts;
      let expected_ordered = Poset.relation_count poset in
      Stats.ordered_pairs s = expected_ordered
      && (Trace.message_count trace = 0
         || Stats.longest_chain s = longest_chain_oracle poset))

let test_stats_ratio () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "empty ratio" 0.0 (Stats.concurrency_ratio s);
  Stats.observe s [| 1; 0 |];
  Stats.observe s [| 0; 1 |];
  Alcotest.(check (float 0.0)) "fully concurrent" 1.0
    (Stats.concurrency_ratio s);
  Stats.observe s [| 2; 2 |];
  (* pairs: (1,2) concurrent; (1,3) and (2,3) ordered. *)
  Alcotest.(check int) "ordered" 2 (Stats.ordered_pairs s);
  Alcotest.(check int) "concurrent" 1 (Stats.concurrent_pairs s)

let test_stats_window () =
  let s = Stats.create ~window:1 () in
  Stats.observe s [| 1; 0 |];
  Stats.observe s [| 0; 1 |];
  Stats.observe s [| 0; 2 |];
  (* Only adjacent pairs compared: (1,2) concurrent, (2,3) ordered. *)
  Alcotest.(check int) "ordered" 1 (Stats.ordered_pairs s);
  Alcotest.(check int) "concurrent" 1 (Stats.concurrent_pairs s);
  Alcotest.(check int) "messages all counted" 3 (Stats.messages s)

let () =
  Alcotest.run "monitor"
    [
      ( "frontier",
        [
          Alcotest.test_case "basics" `Quick test_frontier_basics;
          Alcotest.test_case "duplicate id" `Quick test_frontier_duplicate_id;
          test_frontier_matches_poset;
          test_frontier_pairwise_concurrent;
          test_frontier_out_of_order;
        ] );
      ( "stats",
        [
          Alcotest.test_case "ratio" `Quick test_stats_ratio;
          Alcotest.test_case "window" `Quick test_stats_window;
          test_stats_counts;
          test_stats_match_oracle;
        ] );
    ]
