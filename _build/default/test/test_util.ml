module Rng = Synts_util.Rng
module Bitset = Synts_util.Bitset
module Bitmatrix = Synts_util.Bitmatrix

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen f)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check (list int64)) "copy continues identically" xs ys

let test_rng_split_differs () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds =
  qtest "Rng.int stays in bounds"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Rng.int rng bound in
          0 <= v && v < bound)
        (List.init 50 Fun.id))

let test_rng_int_in =
  qtest "Rng.int_in inclusive range"
    QCheck2.Gen.(triple (int_bound 100_000) (int_range (-50) 50) (int_bound 100))
    (fun (seed, lo, extent) ->
      let rng = Rng.create seed in
      let hi = lo + extent in
      List.for_all
        (fun _ ->
          let v = Rng.int_in rng lo hi in
          lo <= v && v <= hi)
        (List.init 30 Fun.id))

let test_rng_int_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_unit =
  qtest "Rng.float in [0,1)" QCheck2.Gen.(int_bound 100_000) (fun seed ->
      let rng = Rng.create seed in
      List.for_all
        (fun _ ->
          let f = Rng.float rng in
          0.0 <= f && f < 1.0)
        (List.init 50 Fun.id))

let test_rng_shuffle_permutation =
  qtest "shuffle is a permutation"
    QCheck2.Gen.(pair (int_bound 100_000) (int_bound 50))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let arr = Array.init n Fun.id in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.init n Fun.id)

let test_rng_sample_distinct =
  qtest "sample yields k distinct elements"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 0 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let arr = Array.init n (fun i -> 10 * i) in
      let k = if n = 0 then 0 else Rng.int rng (n + 1) in
      let s = Rng.sample rng k arr in
      Array.length s = k
      && List.length (List.sort_uniq compare (Array.to_list s)) = k
      && Array.for_all (fun x -> Array.exists (( = ) x) arr) s)

let test_rng_pick_empty () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng []))

(* ---------- Bitset ---------- *)

module ISet = Set.Make (Int)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "elements" [ 0; 64; 99 ] (Bitset.elements s)

let test_bitset_out_of_range () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "mem -1" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "add 10" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 10)

(* Model-based property: bitset ops agree with Set.Make(Int). *)
let ops_gen =
  QCheck2.Gen.(
    pair (int_range 1 80)
      (list_size (int_bound 200) (pair (int_bound 2) (int_bound 79))))

let test_bitset_model =
  qtest "bitset matches Set model" ops_gen (fun (cap, ops) ->
      let s = Bitset.create cap in
      let model = ref ISet.empty in
      List.iter
        (fun (op, x) ->
          let x = x mod cap in
          match op with
          | 0 ->
              Bitset.add s x;
              model := ISet.add x !model
          | 1 ->
              Bitset.remove s x;
              model := ISet.remove x !model
          | _ -> ignore (Bitset.mem s x))
        ops;
      Bitset.elements s = ISet.elements !model
      && Bitset.cardinal s = ISet.cardinal !model)

let test_bitset_set_algebra =
  qtest "union/inter/diff/subset match Set model"
    QCheck2.Gen.(
      triple (int_range 1 70)
        (list_size (int_bound 60) (int_bound 69))
        (list_size (int_bound 60) (int_bound 69)))
    (fun (cap, xs, ys) ->
      let xs = List.map (fun x -> x mod cap) xs
      and ys = List.map (fun y -> y mod cap) ys in
      let a = Bitset.of_list cap xs and b = Bitset.of_list cap ys in
      let sa = ISet.of_list xs and sb = ISet.of_list ys in
      let u = Bitset.copy a in
      Bitset.union_into ~dst:u b;
      let i = Bitset.copy a in
      Bitset.inter_into ~dst:i b;
      let d = Bitset.copy a in
      Bitset.diff_into ~dst:d b;
      Bitset.elements u = ISet.elements (ISet.union sa sb)
      && Bitset.elements i = ISet.elements (ISet.inter sa sb)
      && Bitset.elements d = ISet.elements (ISet.diff sa sb)
      && Bitset.subset a u
      && Bitset.subset i a
      && (Bitset.subset a b = ISet.subset sa sb))

let test_bitset_fill_clear () =
  let s = Bitset.create 130 in
  Bitset.fill s;
  Alcotest.(check int) "full" 130 (Bitset.cardinal s);
  Bitset.clear s;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty s)

(* ---------- Bitmatrix ---------- *)

let test_bitmatrix_get_set () =
  let m = Bitmatrix.create 70 in
  Bitmatrix.set m 0 69 true;
  Bitmatrix.set m 69 0 true;
  Bitmatrix.set m 35 35 true;
  Alcotest.(check bool) "get 0 69" true (Bitmatrix.get m 0 69);
  Alcotest.(check bool) "get 69 0" true (Bitmatrix.get m 69 0);
  Alcotest.(check bool) "get 1 1" false (Bitmatrix.get m 1 1);
  Bitmatrix.set m 35 35 false;
  Alcotest.(check bool) "cleared" false (Bitmatrix.get m 35 35);
  Alcotest.(check int) "count" 2 (Bitmatrix.count m)

let naive_closure n edges =
  let reach = Array.make_matrix n n false in
  List.iter (fun (i, j) -> reach.(i).(j) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  reach

let test_bitmatrix_closure =
  qtest "transitive closure matches naive Floyd–Warshall"
    QCheck2.Gen.(
      pair (int_range 1 25)
        (list_size (int_bound 80) (pair (int_bound 24) (int_bound 24))))
    (fun (n, raw_edges) ->
      let edges =
        List.map (fun (i, j) -> (i mod n, j mod n)) raw_edges
      in
      let m = Bitmatrix.create n in
      List.iter (fun (i, j) -> Bitmatrix.set m i j true) edges;
      Bitmatrix.transitive_closure m;
      let reach = naive_closure n edges in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Bitmatrix.get m i j <> reach.(i).(j) then ok := false
        done
      done;
      !ok)

let test_bitmatrix_closure_idempotent =
  qtest "closure is idempotent"
    QCheck2.Gen.(
      pair (int_range 1 20)
        (list_size (int_bound 50) (pair (int_bound 19) (int_bound 19))))
    (fun (n, raw_edges) ->
      let m = Bitmatrix.create n in
      List.iter (fun (i, j) -> Bitmatrix.set m (i mod n) (j mod n) true) raw_edges;
      Bitmatrix.transitive_closure m;
      let again = Bitmatrix.copy m in
      Bitmatrix.transitive_closure again;
      Bitmatrix.equal m again)

let test_bitmatrix_acyclic () =
  let m = Bitmatrix.create 4 in
  Bitmatrix.set m 0 1 true;
  Bitmatrix.set m 1 2 true;
  Bitmatrix.set m 2 3 true;
  Alcotest.(check bool) "chain acyclic" true (Bitmatrix.is_acyclic m);
  Bitmatrix.set m 3 0 true;
  Alcotest.(check bool) "cycle detected" false (Bitmatrix.is_acyclic m)

let test_bitmatrix_row_iter () =
  let m = Bitmatrix.create 80 in
  Bitmatrix.set m 5 0 true;
  Bitmatrix.set m 5 63 true;
  Bitmatrix.set m 5 64 true;
  Bitmatrix.set m 5 79 true;
  let acc = ref [] in
  Bitmatrix.row_iter m 5 (fun j -> acc := j :: !acc);
  Alcotest.(check (list int)) "row elements" [ 0; 63; 64; 79 ] (List.rev !acc)

(* ---------- Heap ---------- *)

module Heap = Synts_util.Heap

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h ~priority:p v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let drain () =
    let rec go acc =
      match Heap.pop h with
      | None -> List.rev acc
      | Some (_, v) -> go (v :: acc)
    in
    go []
  in
  Alcotest.(check (list string)) "sorted" [ "z"; "a"; "b"; "c" ] (drain ());
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:1.0 v) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ]
    (drain [])

let test_heap_model =
  qtest ~count:200 "heap pops in nondecreasing priority order"
    QCheck2.Gen.(list_size (int_bound 200) (float_bound_inclusive 100.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p i) priorities;
      let rec drain last n =
        match Heap.pop h with
        | None -> n = List.length priorities
        | Some (p, _) -> p >= last && drain p (n + 1)
      in
      Heap.size h = List.length priorities && drain neg_infinity 0)

let () =
  Alcotest.run "util"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          test_heap_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split differs" `Quick test_rng_split_differs;
          Alcotest.test_case "int rejects bound 0" `Quick test_rng_int_rejects;
          Alcotest.test_case "pick rejects empty" `Quick test_rng_pick_empty;
          test_rng_int_bounds;
          test_rng_int_in;
          test_rng_float_unit;
          test_rng_shuffle_permutation;
          test_rng_sample_distinct;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "out of range" `Quick test_bitset_out_of_range;
          Alcotest.test_case "fill/clear" `Quick test_bitset_fill_clear;
          test_bitset_model;
          test_bitset_set_algebra;
        ] );
      ( "bitmatrix",
        [
          Alcotest.test_case "get/set" `Quick test_bitmatrix_get_set;
          Alcotest.test_case "acyclicity" `Quick test_bitmatrix_acyclic;
          Alcotest.test_case "row_iter word boundaries" `Quick
            test_bitmatrix_row_iter;
          test_bitmatrix_closure;
          test_bitmatrix_closure_idempotent;
        ] );
    ]
