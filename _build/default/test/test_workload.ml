module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng

let qtest ?(count = 150) name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen f)

let subgraph_of used g =
  let ok = ref true in
  Graph.iter_edges (fun u v -> if not (Graph.has_edge g u v) then ok := false) used;
  !ok

let test_random_respects_topology =
  qtest "random workload stays on the topology"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 3 12))
    (fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
    (fun (seed, n) ->
      let g = Topology.random_connected (Rng.create seed) n 0.3 in
      let t =
        Workload.random (Rng.create (seed + 1)) ~topology:g ~messages:50
          ~internal_prob:0.2 ()
      in
      Trace.message_count t = 50 && subgraph_of (Trace.topology t) g)

let test_random_empty_topology () =
  let g = Graph.empty 3 in
  (match Workload.random (Rng.create 0) ~topology:g ~messages:5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "edgeless topology accepted");
  let t = Workload.random (Rng.create 0) ~topology:g ~messages:0 () in
  Alcotest.(check int) "zero messages fine" 0 (Trace.message_count t)

let test_client_server_shape () =
  let t =
    Workload.client_server (Rng.create 3) ~servers:2 ~clients:5 ~requests:10 ()
  in
  Alcotest.(check int) "two messages per request" 20 (Trace.message_count t);
  Alcotest.(check int) "one think per request" 10 (Trace.internal_count t);
  (* Every message involves a server. *)
  Array.iter
    (fun (m : Trace.message) ->
      Alcotest.(check bool) "server endpoint" true
        (m.Trace.src < 2 || m.Trace.dst < 2))
    (Trace.messages t);
  let t' =
    Workload.client_server (Rng.create 3) ~servers:2 ~clients:5 ~requests:10
      ~think:false ()
  in
  Alcotest.(check int) "no thinks" 0 (Trace.internal_count t')

let test_client_server_call_reply_ordered () =
  let t =
    Workload.client_server (Rng.create 1) ~servers:1 ~clients:3 ~requests:5 ()
  in
  let msgs = Trace.messages t in
  (* Messages come in call/reply pairs on the same client-server pair. *)
  let ok = ref true in
  Array.iteri
    (fun i (m : Trace.message) ->
      if i mod 2 = 0 then begin
        let reply = msgs.(i + 1) in
        if m.Trace.src <> reply.Trace.dst || m.Trace.dst <> reply.Trace.src
        then ok := false
      end)
    msgs;
  Alcotest.(check bool) "call/reply pairing" true !ok

let test_pipeline_counts () =
  let t = Workload.pipeline ~stages:4 ~items:3 in
  (* Each item crosses 3 channels. *)
  Alcotest.(check int) "messages" 9 (Trace.message_count t);
  let p = Message_poset.of_trace t in
  (* A pipeline with multiple in-flight items has concurrency. *)
  let has_concurrent = ref false in
  for i = 0 to Poset.size p - 1 do
    for j = i + 1 to Poset.size p - 1 do
      if Poset.concurrent p i j then has_concurrent := true
    done
  done;
  Alcotest.(check bool) "pipelining overlaps" true !has_concurrent

let test_pipeline_item_ordered () =
  (* The first item's stage-to-stage messages form a chain. *)
  let t = Workload.pipeline ~stages:5 ~items:1 in
  let p = Message_poset.of_trace t in
  Alcotest.(check bool) "single item is a chain" true
    (Message_poset.is_total_order p)

let test_ring_token_chain =
  qtest ~count:50 "ring token is a total order"
    QCheck2.Gen.(pair (int_range 2 8) (int_range 1 4))
    (fun (n, laps) -> Printf.sprintf "n=%d laps=%d" n laps)
    (fun (n, laps) ->
      let t = Workload.ring_token ~n ~laps in
      Trace.message_count t = n * laps
      && Message_poset.is_total_order (Message_poset.of_trace t))

let test_tree_sweep () =
  let g = Topology.fig4_tree () in
  let t = Workload.tree_sweep g ~root:0 ~rounds:2 in
  (* 19 edges, up + down, 2 rounds. *)
  Alcotest.(check int) "messages" (2 * 2 * 19) (Trace.message_count t);
  Alcotest.(check bool) "stays on tree" true (subgraph_of (Trace.topology t) g);
  (* After a full round every pair of up-messages from round 1 precedes
     every message of round 2's down sweep: check one instance. *)
  let p = Message_poset.of_trace t in
  Alcotest.(check bool) "rounds ordered" true (Poset.lt p 0 75)

let test_tree_sweep_rejects () =
  let g = Topology.ring 4 in
  match Workload.tree_sweep g ~root:0 ~rounds:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cycle accepted as tree"

let test_all_directions () =
  let g = Topology.complete 4 in
  let t = Workload.all_directions g in
  Alcotest.(check int) "2m messages" 12 (Trace.message_count t);
  Alcotest.(check bool) "uses every edge" true
    (Graph.equal (Trace.topology t) g)

let test_determinism () =
  let g = Topology.complete 5 in
  let a = Workload.random (Rng.create 77) ~topology:g ~messages:30 () in
  let b = Workload.random (Rng.create 77) ~topology:g ~messages:30 () in
  Alcotest.(check bool) "same seed, same trace" true
    (Trace.steps a = Trace.steps b)

let test_hypercube_topology () =
  let g = Topology.hypercube 3 in
  Alcotest.(check int) "8 vertices" 8 (Graph.n g);
  Alcotest.(check int) "12 edges" 12 (Graph.m g);
  Alcotest.(check bool) "000-001" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "000-111 not adjacent" false (Graph.has_edge g 0 7);
  Alcotest.(check int) "regular degree d" 3 (Graph.degree g 5)

let test_allreduce () =
  let t = Workload.allreduce ~dim:3 ~rounds:2 in
  Alcotest.(check int) "processes" 8 (Trace.n t);
  (* Per round: each phase has n/2 pairs, 2 messages each, dim phases. *)
  Alcotest.(check int) "messages" (2 * 3 * 8) (Trace.message_count t);
  Alcotest.(check bool) "stays on hypercube" true
    (subgraph_of (Trace.topology t) (Topology.hypercube 3));
  (* After one full round everyone causally depends on round-1 start:
     the first message precedes the last. *)
  let p = Message_poset.of_trace t in
  Alcotest.(check bool) "rounds chain" true
    (Poset.lt p 0 (Trace.message_count t - 1))

let () =
  Alcotest.run "workload"
    [
      ( "allreduce",
        [
          Alcotest.test_case "hypercube topology" `Quick
            test_hypercube_topology;
          Alcotest.test_case "butterfly rounds" `Quick test_allreduce;
        ] );
      ( "random",
        [
          Alcotest.test_case "empty topology" `Quick test_random_empty_topology;
          Alcotest.test_case "determinism" `Quick test_determinism;
          test_random_respects_topology;
        ] );
      ( "client-server",
        [
          Alcotest.test_case "shape" `Quick test_client_server_shape;
          Alcotest.test_case "call/reply pairing" `Quick
            test_client_server_call_reply_ordered;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "counts and overlap" `Quick test_pipeline_counts;
          Alcotest.test_case "single item chain" `Quick
            test_pipeline_item_ordered;
        ] );
      ( "ring", [ test_ring_token_chain ] );
      ( "tree",
        [
          Alcotest.test_case "sweep" `Quick test_tree_sweep;
          Alcotest.test_case "rejects non-tree" `Quick test_tree_sweep_rejects;
        ] );
      ( "all-directions", [ Alcotest.test_case "coverage" `Quick test_all_directions ] );
    ]
