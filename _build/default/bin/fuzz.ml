(* Randomized cross-validation fuzzer.

   Each iteration draws a random topology and workload, then runs EVERY
   timestamping path in the repository against the brute-force oracle and
   against each other:

     online (best and sequential decompositions), the packet-level
     protocol, the adaptive stamper, the offline realizer algorithm,
     internal-event stamps, the rendezvous protocol over the simulated
     asynchronous network, Fidge-Mattern, and the monitoring frontier.

   Any discrepancy prints a reproduction line and exits non-zero. Use a
   high --iterations for soak testing:

     dune exec bin/fuzz.exe -- --iterations 2000 *)

module Rng = Synts_util.Rng
module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Poset = Synts_poset.Poset
module Vector = Synts_clock.Vector
module Fm_sync = Synts_clock.Fm_sync
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Adaptive_stamper = Synts_core.Adaptive_stamper
module Internal_events = Synts_core.Internal_events
module Script = Synts_net.Script
module Rendezvous = Synts_net.Rendezvous
module Frontier = Synts_monitor.Frontier
module Workload = Synts_workload.Workload
module Validate = Synts_check.Validate
module Oracle = Synts_check.Oracle

open Cmdliner

let random_spec rng max_n =
  let n k = 2 + Rng.int rng (max 1 (k - 2)) in
  match Rng.int rng 10 with
  | 0 -> Topology.Star (max 2 (n max_n))
  | 1 -> Topology.Triangle
  | 2 -> Topology.Complete (max 3 (n (min max_n 9)))
  | 3 -> Topology.Path (max 2 (n max_n))
  | 4 -> Topology.Ring (max 3 (n max_n))
  | 5 ->
      Topology.Client_server
        (1 + Rng.int rng 3, max 1 (n max_n - 2))
  | 6 -> Topology.Disjoint_triangles (1 + Rng.int rng (max 1 (max_n / 3)))
  | 7 -> Topology.Random_tree (max 2 (n max_n))
  | 8 -> Topology.Gnp (max 3 (n max_n), 0.15 +. Rng.float rng *. 0.5)
  | _ -> Topology.Random_connected (max 3 (n max_n), Rng.float rng *. 0.4)

type failure = { iteration : int; what : string; repro : string }

exception Failed of failure

let check iteration repro what ok =
  if not ok then raise (Failed { iteration; what; repro })

let one_iteration ~iteration ~max_n ~max_messages rng =
  let spec = random_spec rng max_n in
  let topo_seed = Rng.int rng 1_000_000 in
  let work_seed = Rng.int rng 1_000_000 in
  let net_seed = Rng.int rng 1_000_000 in
  let messages = Rng.int rng (max_messages + 1) in
  let internal_prob = Rng.float rng *. 0.4 in
  let repro =
    Printf.sprintf
      "topology=%s topo_seed=%d work_seed=%d net_seed=%d messages=%d internal=%.3f"
      (Topology.spec_to_string spec)
      topo_seed work_seed net_seed messages internal_prob
  in
  let check what ok = check iteration repro what ok in
  let g = Topology.build ~rng:(Rng.create topo_seed) spec in
  if Graph.m g > 0 then begin
    let trace =
      Workload.random (Rng.create work_seed) ~topology:g ~messages
        ~internal_prob ()
    in
    let poset = Oracle.message_poset trace in
    let d_best = Decomposition.best g in
    let d_seq = Decomposition.sequential g in

    (* Online, two decompositions, plus packet-level protocol. *)
    let ts_best = Online.timestamp_trace d_best trace in
    check "online/best exact"
      (Validate.ok (Validate.message_timestamps trace ts_best));
    let ts_seq = Online.timestamp_trace d_seq trace in
    check "online/sequential exact"
      (Validate.ok (Validate.message_timestamps trace ts_seq));
    check "protocol agrees"
      (Array.for_all2 Vector.equal ts_best
         (Online.timestamp_trace_protocol d_best trace));

    (* Offline realizer. *)
    let ts_off = Offline.timestamp_trace trace in
    check "offline exact"
      (Validate.ok (Validate.message_timestamps trace ts_off));

    (* Fidge-Mattern agreement on every ordered pair. *)
    let fm = Fm_sync.timestamp_trace trace in
    let agree = ref true in
    Array.iteri
      (fun i vi ->
        Array.iteri
          (fun j vj ->
            if i <> j && Vector.lt vi vj <> Vector.lt fm.(i) fm.(j) then
              agree := false)
          ts_best)
      ts_best;
    check "fm agreement" !agree;

    (* Adaptive stamper. *)
    let s = Adaptive_stamper.create (Trace.n trace) in
    let ts_adaptive =
      Array.map
        (fun (m : Trace.message) ->
          Adaptive_stamper.stamp s ~src:m.Trace.src ~dst:m.Trace.dst)
        (Trace.messages trace)
    in
    let adaptive_ok = ref true in
    Array.iteri
      (fun i vi ->
        Array.iteri
          (fun j vj ->
            if i <> j && Poset.lt poset i j <> Adaptive_stamper.precedes vi vj
            then adaptive_ok := false)
          ts_adaptive)
      ts_adaptive;
    check "adaptive exact" !adaptive_ok;

    (* Internal events. *)
    check "internal events exact"
      (Validate.ok
         (Validate.internal_stamps trace (Internal_events.of_trace d_best trace)));

    (* The rendezvous protocol over the async network — every other
       iteration on a lossy link with retransmission. *)
    let loss = if iteration mod 2 = 0 then 0.25 else 0.0 in
    let o =
      Rendezvous.run ~seed:net_seed ~loss ~retransmit:25.0
        ~decomposition:d_best (Script.of_trace trace)
    in
    check "rendezvous completes" (o.Rendezvous.deadlocked = []);
    (match o.Rendezvous.timestamps with
    | Some ts ->
        check "rendezvous exact"
          (Validate.ok (Validate.message_timestamps o.Rendezvous.trace ts))
    | None -> check "rendezvous produced timestamps" false);

    (* Frontier = maximal elements. *)
    let f = Frontier.create () in
    Array.iteri (fun id v -> ignore (Frontier.insert f ~id v)) ts_best;
    check "frontier = maxima"
      (messages = 0
      || List.sort compare (List.map fst (Frontier.frontier f))
         = Poset.maximal_elements poset)
  end

let fuzz iterations seed max_n max_messages =
  let rng = Rng.create seed in
  let started = Unix.gettimeofday () in
  match
    for iteration = 1 to iterations do
      one_iteration ~iteration ~max_n ~max_messages (Rng.split rng);
      if iteration mod 100 = 0 then
        Format.printf "  %d/%d iterations ok (%.1fs)@." iteration iterations
          (Unix.gettimeofday () -. started)
    done
  with
  | () ->
      Format.printf
        "fuzz: %d iterations, every scheme exact and mutually consistent@."
        iterations
  | exception Failed { iteration; what; repro } ->
      Format.eprintf "fuzz FAILURE at iteration %d: %s@.  repro: %s@."
        iteration what repro;
      exit 1

let () =
  let iterations_t =
    Arg.(value & opt int 300 & info [ "iterations"; "i" ] ~docv:"K")
  in
  let seed_t = Arg.(value & opt int 2002 & info [ "seed" ] ~docv:"SEED") in
  let max_n_t = Arg.(value & opt int 14 & info [ "max-n" ] ~docv:"N") in
  let max_messages_t =
    Arg.(value & opt int 70 & info [ "max-messages" ] ~docv:"M")
  in
  let cmd =
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Randomized cross-validation of every timestamping scheme \
            against the oracle and each other.")
      Term.(const fuzz $ iterations_t $ seed_t $ max_n_t $ max_messages_t)
  in
  exit (Cmd.eval cmd)
