(* Orphan detection for optimistic recovery - the paper's second
   motivating application.

   A client-server system processes RPCs; server 0 crashes and loses its
   recent state. Which messages are orphaned (causally depend on the lost
   computation) and who has to roll back? With the paper's timestamps this
   is one O(d) vector comparison per message against the first lost
   message.

   Run with: dune exec examples/recovery.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Diagram = Synts_sync.Diagram
module Online = Synts_core.Online
module Orphan = Synts_detect.Orphan
module Workload = Synts_workload.Workload
module Rng = Synts_util.Rng

let () =
  let servers = 2 and clients = 4 in
  let topology = Topology.client_server ~servers ~clients in
  let decomposition = Decomposition.best topology in
  let trace =
    Workload.client_server (Rng.create 11) ~servers ~clients ~requests:12
      ~think:false ()
  in
  let ts = Online.timestamp_trace decomposition trace in
  Format.printf
    "Client-server run: %d messages, %d-entry timestamps (one per server)@.@."
    (Trace.message_count trace)
    (Decomposition.size decomposition);
  print_string (Diagram.render trace);

  (* Server 0 crashes, losing everything after its 4th message. *)
  let failure = { Orphan.proc = 0; survives = 4 } in
  let lost = Orphan.lost_messages trace failure in
  let orphaned = Orphan.orphans trace ts failure in
  let rollback = Orphan.rollback_processes trace ts failure in
  let stable = Orphan.stable_messages trace ts failure in

  let show ids =
    String.concat ", " (List.map (fun m -> Printf.sprintf "m%d" (m + 1)) ids)
  in
  Format.printf "@.Server P1 crashes keeping its first %d messages.@."
    failure.Orphan.survives;
  Format.printf "  lost at the server : %s@." (show lost);
  Format.printf "  orphaned messages  : %s@." (show orphaned);
  Format.printf "  still stable       : %s@." (show stable);
  Format.printf "  processes to roll back: %s@."
    (String.concat ", "
       (List.map (fun p -> Printf.sprintf "P%d" (p + 1)) rollback));
  Format.printf
    "@.Each orphan was identified by a single %d-entry vector comparison;@."
    (Decomposition.size decomposition);
  Format.printf
    "Fidge-Mattern would have compared %d-entry vectors for the same answer.@."
    (Trace.n trace)
