(* Offline debugging with the Dilworth-realizer algorithm (paper Sec. 4).

   A recorded execution is re-timestamped after the fact: the message poset
   is built, its width computed (always <= floor(N/2), Theorem 8), a chain
   realizer constructed, and every message given a width-sized rank vector.
   The debugger then answers concurrency queries and renders the time
   diagram - the workflow of trace browsers like POET or XPVM that the
   paper's introduction motivates.

   Run with: dune exec examples/debug_replay.exe *)

module Topology = Synts_graph.Topology
module Trace = Synts_sync.Trace
module Diagram = Synts_sync.Diagram
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Dilworth = Synts_poset.Dilworth
module Offline = Synts_core.Offline
module Internal_events = Synts_core.Internal_events
module Workload = Synts_workload.Workload
module Validate = Synts_check.Validate
module Rng = Synts_util.Rng

let () =
  (* "Recorded" execution: 8 processes on a random connected topology. *)
  let topology = Topology.random_connected (Rng.create 5) 8 0.25 in
  let trace =
    Workload.random (Rng.create 99) ~topology ~messages:24 ~internal_prob:0.2 ()
  in
  Format.printf "Recorded trace: %d processes, %d messages, %d internal events@."
    (Trace.n trace)
    (Trace.message_count trace)
    (Trace.internal_count trace);

  let poset = Message_poset.of_trace trace in
  let width = Dilworth.width poset in
  Format.printf "Message poset width = %d (Theorem 8 bound: floor(N/2) = %d)@."
    width
    (Offline.width_bound ~n:(Trace.n trace));

  let ts = Offline.timestamp_trace trace in
  Format.printf "@.%s@." (Diagram.render_with_timestamps trace ts);

  let verdict = Validate.message_timestamps trace ts in
  Format.printf "Offline timestamps encode the order exactly: %s@."
    (if Validate.ok verdict then "yes" else "NO");

  (* Debugger queries. *)
  let k = Trace.message_count trace in
  Format.printf "@.Concurrency matrix (.: ordered, X: concurrent):@.";
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      print_char
        (if i = j then '-'
         else if Offline.concurrent ts.(i) ts.(j) then 'X'
         else '.')
    done;
    print_newline ()
  done;

  (* Internal events also get (prev, succ, counter) stamps from the same
     vectors (Sec. 5). *)
  let stamps = Internal_events.of_trace_with ts trace in
  let iverdict = Validate.internal_stamps trace stamps in
  Format.printf
    "@.Internal events: %d stamped; happened-before captured exactly: %s@."
    (Array.length stamps)
    (if Validate.ok iverdict then "yes" else "NO")
