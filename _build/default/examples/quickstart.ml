(* Quickstart: timestamp the paper's Figure 6 computation and answer
   precedence queries.

   Run with: dune exec examples/quickstart.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Diagram = Synts_sync.Diagram
module Online = Synts_core.Online
module Vector = Synts_clock.Vector

let () =
  (* 1. Describe who can talk to whom. *)
  let topology = Topology.complete 5 in

  (* 2. Pick an edge decomposition; its size is the timestamp size. *)
  let decomposition = Decomposition.best topology in
  Format.printf "Topology K5, decomposition size d = %d (vs. N = 5 for FM)@."
    (Decomposition.size decomposition);

  (* 3. A synchronous computation: a global sequence of instantaneous
     messages (here the run of the paper's Figure 6). *)
  let trace =
    Trace.of_steps_exn ~n:5
      [
        Send (0, 1); Send (2, 3); Send (1, 2); Send (3, 4); Send (0, 4);
        Send (1, 4);
      ]
  in

  (* 4. Timestamp every message. *)
  let ts = Online.timestamp_trace decomposition trace in
  print_string (Diagram.render_with_timestamps trace ts);

  (* 5. Precedence queries are one vector comparison, O(d). *)
  let show i j =
    let relation =
      if Online.precedes ts.(i) ts.(j) then "synchronously precedes"
      else if Online.precedes ts.(j) ts.(i) then "follows"
      else "is concurrent with"
    in
    Format.printf "m%d %s m%d   (%s vs %s)@." (i + 1) relation (j + 1)
      (Vector.to_string ts.(i))
      (Vector.to_string ts.(j))
  in
  show 0 2;
  show 0 1;
  show 2 5
