(* A live CSP program on the effects runtime with timestamping middleware.

   Four pipeline stages pass work items downstream over synchronous
   channels (CSP rendezvous); the runtime piggybacks the Figure 5 protocol
   on every rendezvous, so when the program finishes we hold a timestamped
   trace of what actually executed - without the program mentioning clocks
   anywhere.

   Run with: dune exec examples/csp_pipeline.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Diagram = Synts_sync.Diagram
module Online = Synts_core.Online
module Validate = Synts_check.Validate

module R = Synts_csp.Runtime.Make (struct
  type msg = int (* work item id *)
end)

let stages = 4
let items = 5

let stage_program pid api =
  if pid = 0 then
    (* Source: emit items downstream. *)
    for item = 1 to items do
      ignore (api.R.send 1 item)
    done
  else if pid = stages - 1 then
    (* Sink: consume and "commit" each item (an internal event). *)
    for _ = 1 to items do
      let _, _item, _ = api.R.recv () in
      api.R.internal ()
    done
  else
    (* Middle stage: transform and forward. *)
    for _ = 1 to items do
      let _, item, _ = api.R.recv () in
      api.R.internal ();
      ignore (api.R.send (pid + 1) item)
    done

let () =
  let topology = Topology.path stages in
  let decomposition = Decomposition.best topology in
  Format.printf "Pipeline of %d stages; path topology decomposes into %d groups@."
    stages
    (Decomposition.size decomposition);

  let outcome =
    R.run ~seed:7 ~decomposition ~n:stages (Array.init stages stage_program)
  in
  assert (outcome.R.deadlocked = [] && outcome.R.failures = []);
  let trace = outcome.R.trace in
  let ts = Option.get outcome.R.timestamps in
  Format.printf "Executed %d messages, %d internal events:@.@.%s@."
    (Trace.message_count trace)
    (Trace.internal_count trace)
    (Diagram.render trace);

  let verdict = Validate.message_timestamps trace ts in
  Format.printf "Timestamps encode the run's message order: %s@."
    (if Validate.ok verdict then "yes" else "NO");

  (* The interesting phenomenon: transfers two stages apart overlap. *)
  let k = Trace.message_count trace in
  let concurrent = ref 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if Online.concurrent ts.(i) ts.(j) then incr concurrent
    done
  done;
  Format.printf "%d concurrent message pairs were pipelined.@." !concurrent
