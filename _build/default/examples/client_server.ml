(* Client-server RPC monitoring (paper Sec. 3.3).

   A monitoring system wants to order the RPCs of a service with 3 servers
   and a growing client population. Fidge-Mattern needs N-sized vectors
   (N = servers + clients); the edge-decomposition clocks need exactly one
   component per server, independent of the client count.

   Run with: dune exec examples/client_server.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Online = Synts_core.Online
module Fm_sync = Synts_clock.Fm_sync
module Workload = Synts_workload.Workload
module Validate = Synts_check.Validate
module Rng = Synts_util.Rng

let servers = 3

let monitor_one ~clients =
  let topology = Topology.client_server ~servers ~clients in
  let decomposition = Decomposition.best topology in
  let trace =
    Workload.client_server (Rng.create 2024) ~servers ~clients
      ~requests:(20 * clients) ()
  in
  let ours = Online.timestamp_trace decomposition trace in
  let fm = Fm_sync.timestamp_trace trace in
  let verdict = Validate.message_timestamps trace ours in
  Format.printf
    "%4d clients (N = %3d): our vectors %d entries, FM %3d entries  — %s@."
    clients (servers + clients)
    (Decomposition.size decomposition)
    (servers + clients)
    (if Validate.ok verdict then "order captured exactly" else "BROKEN");
  (* Spot-check: the same pair classified identically by both schemes. *)
  let k = Trace.message_count trace in
  let agreement = ref true in
  for i = 0 to min 200 (k - 1) do
    for j = 0 to min 200 (k - 1) do
      if
        i <> j
        && Online.precedes ours.(i) ours.(j)
           <> Fm_sync.precedes fm.(i) fm.(j)
      then agreement := false
    done
  done;
  assert !agreement

let () =
  Format.printf "RPC monitoring with %d servers; timestamp sizes:@.@." servers;
  List.iter (fun clients -> monitor_one ~clients) [ 5; 20; 80; 200 ];
  Format.printf
    "@.Constant %d-entry timestamps no matter how many clients connect.@."
    servers
