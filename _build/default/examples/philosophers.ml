(* Dining philosophers on the CSP runtime - the classic rendezvous
   deadlock, its fix, and what the timestamps say about it.

   Forks are processes (the CSP modelling); philosophers synchronously
   request and release them. The naive "everyone grabs left first"
   protocol deadlocks under some schedules; the asymmetric fix (one
   philosopher grabs right first) never does. The runtime's deterministic
   seeded scheduler lets us hunt for the deadlock, and the timestamped
   trace shows the eating sections are totally ordered per fork.

   Run with: dune exec examples/philosophers.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Graph = Synts_graph.Graph
module Trace = Synts_sync.Trace
module Online = Synts_core.Online
module Validate = Synts_check.Validate

module R = Synts_csp.Runtime.Make (struct
  type msg = [ `Acquire | `Release | `Granted ]
end)

let philosophers = 4

(* Process layout: philosophers 0..k-1, forks k..2k-1.
   Philosopher i uses forks i and (i+1) mod k. *)
let fork_of i = philosophers + i

let fork_process api =
  (* A fork alternates: grant to whichever philosopher asks first, then
     wait for that philosopher's release. *)
  for _ = 1 to 2 do
    let owner, msg, _ = api.R.recv () in
    assert (msg = `Acquire);
    ignore (api.R.send owner `Granted);
    let msg', _ = api.R.recv_from owner in
    assert (msg' = `Release)
  done

let philosopher ~first ~second api =
  let acquire fork =
    ignore (api.R.send fork `Acquire);
    let reply, _ = api.R.recv_from fork in
    assert (reply = `Granted)
  in
  let release fork = ignore (api.R.send fork `Release) in
  acquire first;
  acquire second;
  api.R.internal () (* eating *);
  release first;
  release second

let run_system ~symmetric ~seed =
  let programs =
    Array.init (2 * philosophers) (fun pid ->
        if pid >= philosophers then fork_process
        else begin
          let left = fork_of pid
          and right = fork_of ((pid + 1) mod philosophers) in
          if symmetric || pid < philosophers - 1 then
            philosopher ~first:left ~second:right
          else philosopher ~first:right ~second:left
        end)
  in
  R.run ~seed ~max_steps:10_000 ~n:(2 * philosophers) programs

let () =
  (* Hunt for a deadlocking schedule of the symmetric protocol. *)
  let deadlock_seed =
    List.find_opt
      (fun seed -> (run_system ~symmetric:true ~seed).R.deadlocked <> [])
      (List.init 200 Fun.id)
  in
  (match deadlock_seed with
  | Some seed ->
      let o = run_system ~symmetric:true ~seed in
      Format.printf
        "symmetric protocol: seed %d deadlocks with %d processes stuck after \
         %d messages@."
        seed
        (List.length o.R.deadlocked)
        (Trace.message_count o.R.trace)
  | None ->
      Format.printf
        "symmetric protocol: no deadlock found in 200 schedules (unlucky!)@.");

  (* The asymmetric protocol never deadlocks; check many schedules and
     validate the timestamps of one run. *)
  let all_clean =
    List.for_all
      (fun seed -> (run_system ~symmetric:false ~seed).R.deadlocked = [])
      (List.init 200 Fun.id)
  in
  Format.printf "asymmetric protocol: 200 schedules, deadlock-free: %b@."
    all_clean;

  let o = run_system ~symmetric:false ~seed:5 in
  let topology = Trace.topology o.R.trace in
  let d = Decomposition.best topology in
  let ts = Online.timestamp_trace d o.R.trace in
  Format.printf
    "one run: %d messages, decomposition of the philosopher-fork graph has \
     %d groups (FM would use %d), exact: %b@."
    (Trace.message_count o.R.trace)
    (Decomposition.size d) (Graph.n topology)
    (Validate.ok (Validate.message_timestamps o.R.trace ts));

  (* Per fork, all its messages are totally ordered - the fork serializes
     its philosophers, and the timestamps prove it. *)
  let fork = fork_of 0 in
  let fork_msgs =
    List.filter
      (fun (m : Trace.message) -> Trace.involves m fork)
      (Array.to_list (Trace.messages o.R.trace))
  in
  let totally_ordered =
    List.for_all
      (fun (a : Trace.message) ->
        List.for_all
          (fun (b : Trace.message) ->
            a.Trace.id = b.Trace.id
            || not (Online.concurrent ts.(a.Trace.id) ts.(b.Trace.id)))
          fork_msgs)
      fork_msgs
  in
  Format.printf "fork 1's %d messages are totally ordered: %b@."
    (List.length fork_msgs) totally_ordered
