(* A replicated key-value store on the CSP runtime, with the timestamps
   doing real work: conflict classification between replicas.

   Two replicas serve writes from their clients over synchronous RPC and
   run one anti-entropy sync. Every operation is a timestamped message,
   so the audit at the end can tell, for two writes of the same key
   handled by different replicas, whether one causally preceded the other
   (a legitimate overwrite) or they were concurrent (a genuine conflict
   needing resolution). Fidge-Mattern would compare (replicas+clients)-
   sized vectors; the decomposition needs one component per replica.

   Run with: dune exec examples/kv_store.exe *)

module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Validate = Synts_check.Validate

type op = Put of string * int | Get of string | Sync | Reply of int

module R = Synts_csp.Runtime.Make (struct
  type msg = op
end)

let replicas = 2
let clients = 4
let writes_per_client = 3

let replica_process pid api =
  let store = Hashtbl.create 8 in
  let expected =
    (clients / replicas * (writes_per_client + 1))
    + if pid = 1 then 1 else 0 (* replica 1 receives the sync *)
  in
  for _ = 1 to expected do
    let src, op, _ts = api.R.recv () in
    match op with
    | Put (key, value) ->
        Hashtbl.replace store key value;
        ignore (api.R.send src (Reply value))
    | Get key ->
        ignore
          (api.R.send src
             (Reply (Option.value ~default:0 (Hashtbl.find_opt store key))))
    | Sync -> ignore (api.R.send src (Reply 0))
    | Reply _ -> assert false
  done;
  if pid = 0 then begin
    ignore (api.R.send 1 Sync);
    let _ = api.R.recv_from 1 in
    ()
  end

let client_process pid api =
  let replica = pid mod replicas in
  for w = 1 to writes_per_client do
    let key = Printf.sprintf "k%d" (pid mod 3) in
    ignore (api.R.send replica (Put (key, (100 * pid) + w)));
    let _ = api.R.recv_from replica in
    ()
  done;
  ignore (api.R.send replica (Get "k0"));
  let _ = api.R.recv_from replica in
  ()

let () =
  let n = replicas + clients in
  let topology =
    Graph.of_edges n
      ((0, 1)
      :: List.init clients (fun c -> (replicas + c, (replicas + c) mod replicas)))
  in
  let decomposition = Decomposition.best topology in
  let programs =
    Array.init n (fun pid ->
        if pid < replicas then replica_process pid else client_process pid)
  in
  let o = R.run ~seed:3 ~decomposition ~n programs in
  assert (o.R.deadlocked = [] && o.R.failures = []);
  let trace = o.R.trace in
  let ts = Option.get o.R.timestamps in
  Format.printf
    "kv run: %d messages, %d-component vectors (FM: %d), order exact: %b@."
    (Trace.message_count trace)
    (Decomposition.size decomposition)
    n
    (Validate.ok (Validate.message_timestamps trace ts));

  (* Audit: recover each write request from the trace (client -> replica
     messages carrying Put, identified by position) and classify pairs. *)
  let writes = ref [] in
  Array.iter
    (fun (m : Trace.message) ->
      (* Client->replica messages with odd client ids write to "k1", etc.;
         we reconstruct the key from the client id as the client did. *)
      if m.Trace.src >= replicas && m.Trace.dst < replicas then begin
        let key = Printf.sprintf "k%d" (m.Trace.src mod 3) in
        writes := (key, m.Trace.id, m.Trace.dst) :: !writes
      end)
    (Trace.messages trace);
  let writes = List.rev !writes in
  let conflicts = ref 0 and ordered = ref 0 in
  List.iteri
    (fun i (k1, m1, r1) ->
      List.iteri
        (fun j (k2, m2, r2) ->
          if i < j && k1 = k2 && r1 <> r2 then
            if Online.concurrent ts.(m1) ts.(m2) then incr conflicts
            else incr ordered)
        writes)
    writes;
  Format.printf
    "cross-replica same-key write pairs: %d causally ordered (safe \
     overwrite), %d concurrent (true conflicts to resolve)@."
    !ordered !conflicts;
  assert (!conflicts + !ordered > 0)
