examples/philosophers.mli:
