examples/full_stack.ml: Array Filename Format List Option Printf String Synts_check Synts_core Synts_csp Synts_detect Synts_export Synts_graph Synts_poset Synts_sync Sys
