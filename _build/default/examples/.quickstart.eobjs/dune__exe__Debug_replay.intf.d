examples/debug_replay.mli:
