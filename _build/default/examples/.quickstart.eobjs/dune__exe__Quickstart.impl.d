examples/quickstart.ml: Array Format Synts_clock Synts_core Synts_graph Synts_sync
