examples/csp_pipeline.mli:
