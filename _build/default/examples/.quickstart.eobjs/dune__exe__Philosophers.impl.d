examples/philosophers.ml: Array Format Fun List Synts_check Synts_core Synts_csp Synts_graph Synts_sync
