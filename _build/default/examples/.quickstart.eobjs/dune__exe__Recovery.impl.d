examples/recovery.ml: Format List Printf String Synts_core Synts_detect Synts_graph Synts_sync Synts_util Synts_workload
