examples/async_network.ml: Array Format List Option Synts_check Synts_graph Synts_net Synts_sync Synts_util Synts_workload
