examples/debug_replay.ml: Array Format Synts_check Synts_core Synts_graph Synts_poset Synts_sync Synts_util Synts_workload
