examples/kv_store.ml: Array Format Hashtbl List Option Printf Synts_check Synts_clock Synts_core Synts_csp Synts_graph Synts_sync
