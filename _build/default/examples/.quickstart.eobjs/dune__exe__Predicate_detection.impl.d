examples/predicate_detection.ml: Array Format List Synts_clock Synts_core Synts_detect Synts_graph Synts_sync
