examples/recovery.mli:
