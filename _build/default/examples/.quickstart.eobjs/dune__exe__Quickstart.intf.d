examples/quickstart.mli:
