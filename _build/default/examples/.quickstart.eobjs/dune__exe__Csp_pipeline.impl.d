examples/csp_pipeline.ml: Array Format Option Synts_check Synts_core Synts_csp Synts_graph Synts_sync
