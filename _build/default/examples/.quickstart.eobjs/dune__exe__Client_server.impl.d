examples/client_server.ml: Array Format List Synts_check Synts_clock Synts_core Synts_graph Synts_sync Synts_util Synts_workload
