examples/tree_monitor.ml: Array Format Synts_clock Synts_core Synts_graph Synts_poset Synts_sync Synts_workload
