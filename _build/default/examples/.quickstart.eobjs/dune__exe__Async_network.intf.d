examples/async_network.mli:
