examples/tree_monitor.mli:
