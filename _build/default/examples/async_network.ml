(* Synchronous timestamps over a real (simulated) asynchronous network.

   Everything so far fed the algorithms idealized traces. This example
   runs the actual protocol stack the paper assumes: processes execute
   communication scripts over an asynchronous network with random delays;
   synchronous sends are implemented with REQ/ACK handshakes (the sender
   blocks); the Figure 5 vectors ride on exactly those two packets. The
   induced computation is recovered from the rendezvous order and its
   timestamps are validated.

   Run with: dune exec examples/async_network.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Diagram = Synts_sync.Diagram
module Script = Synts_net.Script
module Rendezvous = Synts_net.Rendezvous
module Workload = Synts_workload.Workload
module Validate = Synts_check.Validate
module Rng = Synts_util.Rng

let () =
  let topology = Topology.client_server ~servers:2 ~clients:5 in
  let decomposition = Decomposition.best topology in
  (* The program we want to run, as per-process communication scripts
     (projected here from a generated workload; a real deployment would
     just run its code). *)
  let intended =
    Workload.client_server (Rng.create 7) ~servers:2 ~clients:5 ~requests:8 ()
  in
  let scripts = Script.of_trace intended in
  Array.iteri
    (fun p s -> Format.printf "P%d: %a@." (p + 1) Script.pp s)
    scripts;

  List.iter
    (fun (label, min_delay, max_delay) ->
      let o =
        Rendezvous.run ~seed:13 ~min_delay ~max_delay
          ~decomposition scripts
      in
      assert (o.Rendezvous.deadlocked = []);
      let ts = Option.get o.Rendezvous.timestamps in
      let verdict = Validate.message_timestamps o.Rendezvous.trace ts in
      Format.printf
        "@.%s delays: %d packets (2 per message), makespan %.1f, exact: %s@."
        label o.Rendezvous.packets o.Rendezvous.makespan
        (if Validate.ok verdict then "yes" else "NO"))
    [ ("uniform short", 1.0, 2.0); ("wild", 1.0, 50.0) ];

  (* Show one induced run. *)
  let o = Rendezvous.run ~seed:13 ~decomposition scripts in
  Format.printf "@.Induced synchronous computation (rendezvous order):@.%s"
    (Diagram.render_with_timestamps o.Rendezvous.trace
       (Option.get o.Rendezvous.timestamps))
