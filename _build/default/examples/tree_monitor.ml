(* Hierarchical monitoring on the paper's Figure 4 tree.

   A 20-process system organized as a tree runs aggregation sweeps; a
   monitor timestamps every message with 3-component vectors (one per edge
   group of the tree's decomposition) and uses precedence tests to answer
   "could these two reports be causally related?" - the core question of
   distributed predicate detection.

   Run with: dune exec examples/tree_monitor.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset
module Online = Synts_core.Online
module Workload = Synts_workload.Workload
module Vector = Synts_clock.Vector

let () =
  let tree = Topology.fig4_tree () in
  let decomposition = Decomposition.paper tree in
  Format.printf "Figure 4 tree: 20 processes, %d edge groups:@.%a@."
    (Decomposition.size decomposition)
    (Decomposition.pp ?labels:None)
    decomposition;

  let trace = Workload.tree_sweep tree ~root:0 ~rounds:3 in
  let ts = Online.timestamp_trace decomposition trace in
  Format.printf "Sweep workload: %d messages, each timestamped with %d ints@."
    (Trace.message_count trace)
    (Decomposition.size decomposition);

  (* Predicate-detection style query: find all message pairs that are
     concurrent (potential simultaneous local predicate hits). *)
  let concurrent_pairs = ref 0 and ordered_pairs = ref 0 in
  let k = Trace.message_count trace in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if Online.concurrent ts.(i) ts.(j) then incr concurrent_pairs
      else incr ordered_pairs
    done
  done;
  Format.printf "Pairs: %d ordered, %d concurrent@." !ordered_pairs
    !concurrent_pairs;

  (* Cross-check a few against the poset itself. *)
  let poset = Message_poset.of_trace trace in
  let agree = ref true in
  for i = 0 to min 60 (k - 1) do
    for j = 0 to min 60 (k - 1) do
      if i <> j && Poset.lt poset i j <> Online.precedes ts.(i) ts.(j) then
        agree := false
    done
  done;
  Format.printf "Spot check against the message poset: %s@."
    (if !agree then "all agree" else "MISMATCH");

  (* Example query the monitor answers in O(3): did the first up-sweep
     report of the last round reach the root before the final broadcast? *)
  let first_up_last_round = 2 * 19 * 2 in
  let last_down = k - 1 in
  Format.printf
    "First report of round 3 %s the final broadcast (vectors %s vs %s)@."
    (if Online.precedes ts.(first_up_last_round) ts.(last_down) then
       "precedes"
     else "does not precede")
    (Vector.to_string ts.(first_up_last_round))
    (Vector.to_string ts.(last_down))
