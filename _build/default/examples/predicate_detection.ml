(* Weak conjunctive predicate detection - the paper's first motivating
   application.

   Three worker processes plus a coordinator run a synchronous computation;
   each worker occasionally enters a "critical" local state (an internal
   event between two messages). The monitor asks: was there a consistent
   global state in which ALL THREE workers were critical at once?
   With exact message timestamps, the answer needs only vector
   comparisons on the intervals between messages.

   Run with: dune exec examples/predicate_detection.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Diagram = Synts_sync.Diagram
module Internal_events = Synts_core.Internal_events
module Predicate = Synts_detect.Predicate
module Vector = Synts_clock.Vector

let () =
  (* Coordinator is P0; workers P1..P3; star topology (d = 1!). *)
  let topology = Topology.star 4 in
  let decomposition = Decomposition.best topology in
  Format.printf "Star topology: timestamps are single integers (d = %d)@.@."
    (Decomposition.size decomposition);

  (* A computation where the workers' critical sections (internal events)
     do overlap: every worker goes critical right after the coordinator's
     first round of pings, before the second round collects. *)
  let trace =
    Trace.of_steps_exn ~n:4
      [
        Send (0, 1); Local 1 (* P1 critical *);
        Send (0, 2); Local 2 (* P2 critical *);
        Send (0, 3); Local 3 (* P3 critical *);
        Send (1, 0); Send (2, 0); Send (3, 0);
      ]
  in
  print_string (Diagram.render trace);

  let stamps = Internal_events.of_trace decomposition trace in
  let monitored =
    List.map
      (fun p ->
        ( p,
          Array.to_list stamps
          |> List.filter (fun s -> s.Internal_events.proc = p)
          |> List.map Predicate.interval_of_internal ))
      [ 1; 2; 3 ]
  in
  (match Predicate.possibly monitored with
  | Some witness ->
      Format.printf
        "@.POSSIBLY(all critical): yes — witness intervals:@.";
      List.iter
        (fun iv ->
          Format.printf "  P%d critical after %s until %s@."
            (iv.Predicate.proc + 1)
            (Vector.to_string iv.Predicate.since)
            (match iv.Predicate.until with
            | Some v -> Vector.to_string v
            | None -> "end"))
        witness
  | None -> Format.printf "@.POSSIBLY(all critical): no@.");

  (* Now a serialized computation: each worker is critical only while
     holding a token the coordinator circulates - no overlap possible. *)
  let serialized =
    Trace.of_steps_exn ~n:4
      [
        Send (0, 1); Local 1; Send (1, 0);
        Send (0, 2); Local 2; Send (2, 0);
        Send (0, 3); Local 3; Send (3, 0);
      ]
  in
  let stamps = Internal_events.of_trace decomposition serialized in
  let monitored =
    List.map
      (fun p ->
        ( p,
          Array.to_list stamps
          |> List.filter (fun s -> s.Internal_events.proc = p)
          |> List.map Predicate.interval_of_internal ))
      [ 1; 2; 3 ]
  in
  match Predicate.possibly monitored with
  | Some _ -> Format.printf "token round: POSSIBLY = yes (UNEXPECTED)@."
  | None ->
      Format.printf
        "token round: POSSIBLY(all critical) = no — the token serializes \
         the critical sections, and the timestamps prove it.@."
