(* The whole stack in one pipeline.

   1. A concurrent CSP program runs on the effects runtime (workers + two
      aggregators), with the Figure 5 middleware stamping every rendezvous.
   2. The recorded trace is saved to disk in the text format.
   3. A separate "debugger" loads it back, re-timestamps it offline with
      the Dilworth realizer, answers predicate and recovery queries, and
      emits Graphviz artifacts.

   Run with: dune exec examples/full_stack.exe *)

module Topology = Synts_graph.Topology
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Trace_io = Synts_sync.Trace_io
module Message_poset = Synts_sync.Message_poset
module Dilworth = Synts_poset.Dilworth
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Internal_events = Synts_core.Internal_events
module Predicate = Synts_detect.Predicate
module Orphan = Synts_detect.Orphan
module Dot = Synts_export.Dot
module Validate = Synts_check.Validate

module R = Synts_csp.Runtime.Make (struct
  type msg = int
end)

let workers = 4

(* Two aggregators (P0, P1); workers P2.. report to both, alternating, and
   mark a local checkpoint (internal event) between the two reports. *)
let program pid api =
  if pid < 2 then
    R.Pattern.rpc_server ~requests:workers ~handler:(fun _ v -> v + 1) api
  else begin
    let reply1, _ = R.Pattern.rpc_call api ~server:0 pid in
    api.R.internal ();
    let reply2, _ = R.Pattern.rpc_call api ~server:1 reply1 in
    assert (reply2 = pid + 2)
  end

let () =
  let n = 2 + workers in
  let topology = Topology.client_server ~servers:2 ~clients:workers in
  let decomposition = Decomposition.best topology in

  (* --- 1. live run --- *)
  let outcome = R.run ~seed:21 ~decomposition ~n (Array.init n program) in
  assert (outcome.R.deadlocked = [] && outcome.R.failures = []);
  let trace = outcome.R.trace in
  let live_ts = Option.get outcome.R.timestamps in
  Format.printf "live run: %d messages, %d checkpoints, d = %d, exact: %b@."
    (Trace.message_count trace)
    (Trace.internal_count trace)
    (Decomposition.size decomposition)
    (Validate.ok (Validate.message_timestamps trace live_ts));

  (* --- 2. persist --- *)
  let path = Filename.temp_file "synts_fullstack" ".trace" in
  Trace_io.save path trace;
  Format.printf "trace saved to %s@." path;

  (* --- 3. offline analysis --- *)
  let loaded =
    match Trace_io.load path with Ok t -> t | Error e -> failwith e
  in
  Sys.remove path;
  assert (Trace.steps loaded = Trace.steps trace);
  let off_ts = Offline.timestamp_trace loaded in
  let width = Dilworth.width (Message_poset.of_trace loaded) in
  Format.printf
    "offline: width %d (bound %d), %d-component rank vectors, exact: %b@."
    width
    (Offline.width_bound ~n)
    width
    (Validate.ok (Validate.message_timestamps loaded off_ts));

  (* Were all worker checkpoints possibly simultaneous? *)
  let stamps = Internal_events.of_trace_with off_ts loaded in
  let monitored =
    List.init workers (fun i ->
        let p = 2 + i in
        ( p,
          Array.to_list stamps
          |> List.filter (fun s -> s.Internal_events.proc = p)
          |> List.map Predicate.interval_of_internal ))
  in
  Format.printf "all %d checkpoints possibly simultaneous: %b@." workers
    (Predicate.possibly monitored <> None);

  (* If aggregator P1 lost its last two messages, who rolls back? *)
  let survives =
    max 0
      (List.length
         (List.filter
            (function Trace.Msg _ -> true | Trace.Int _ -> false)
            (Trace.process_history loaded 1))
      - 2)
  in
  let failure = { Orphan.proc = 1; survives } in
  Format.printf "crash of P2 losing 2 messages orphans %d, rolls back %s@."
    (List.length (Orphan.orphans loaded off_ts failure))
    (String.concat ","
       (List.map
          (fun p -> Printf.sprintf "P%d" (p + 1))
          (Orphan.rollback_processes loaded off_ts failure)));

  (* --- artifacts --- *)
  let dot = Dot.decomposition topology decomposition in
  Format.printf "@.Graphviz (decomposition), first lines:@.";
  String.split_on_char '\n' dot
  |> List.filteri (fun i _ -> i < 6)
  |> List.iter print_endline;
  Format.printf "...@."
