lib/csp/runtime.ml: Array Effect Fun Hashtbl List Option Printf Synts_clock Synts_core Synts_sync Synts_util
