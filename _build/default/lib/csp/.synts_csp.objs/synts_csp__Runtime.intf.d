lib/csp/runtime.mli: Synts_clock Synts_graph Synts_sync
