(** The reproduction's experiment suite.

    The paper has no measured evaluation — its claims are theorems and
    worked figures — so each experiment here turns one claim into a
    measurement, and the EXPERIMENTS.md tables are regenerated from these
    functions (via [synts experiments] or directly). All experiments are
    deterministic from [seed]. *)

type table = {
  id : string;  (** Experiment id, e.g. "E8". *)
  title : string;
  paper_claim : string;  (** What the paper states. *)
  header : string list;
  rows : string list list;
  verdict : string;  (** One-line measured outcome. *)
}

val pp_table : Format.formatter -> table -> unit
(** GitHub-flavoured markdown. *)

val e1_total_order : seed:int -> table
(** Lemma 1: stars/triangles give total orders; other topologies admit
    concurrent messages. *)

val e2_online_exactness : seed:int -> table
(** Theorem 4 across topology families: ordered-pair agreement with the
    brute-force oracle. *)

val e3_size_bound : seed:int -> table
(** Theorem 5: decomposition size vs. min(β(G), N−2) per family. *)

val e4_approximation_ratio : seed:int -> table
(** Theorem 6: Figure 7 algorithm vs. exact optimum on random small
    graphs — observed ratio distribution. *)

val e5_forest_optimality : seed:int -> table
(** Theorem 7: the algorithm is optimal on random forests. *)

val e6_offline : seed:int -> table
(** Theorem 8 / Figure 9: poset width vs. ⌊N/2⌋, realizer size, exactness
    of offline timestamps. *)

val e7_internal_events : seed:int -> table
(** Theorem 9: internal-event stamps vs. the happened-before oracle. *)

val e8_headline_sizes : seed:int -> table
(** The scalability claim: timestamp entries, ours vs. Fidge–Mattern, as N
    grows across topology families. *)

val e9_piggyback : seed:int -> table
(** Wire cost per message (vector entries each way) for ours, FM,
    Singhal–Kshemkalyani and direct dependency on one workload per
    family. *)

val e10_plausible_error : seed:int -> table
(** Plausible clocks' false-ordering rate vs. size r, against our exact
    clocks at size d. *)

val e11_adaptive : seed:int -> table
(** Extension beyond the paper: the adaptive stamper (decomposition grown
    on first channel use, zero-padded comparison) stays exact; its size is
    compared against the full-knowledge decomposition. *)

val e12_dimension_vs_width : seed:int -> table
(** Extension: the gap between the offline algorithm's width-sized
    realizers and the NP-hard true dimension, on exactly solved small
    message posets. *)

val e13_checkpoint_interval : seed:int -> table
(** Extension: rollback damage (via {!Synts_detect.Orphan.recovery_line})
    as a function of checkpoint frequency. *)

val all : seed:int -> table list

val figure : string -> (string, string) result
(** Textual reproduction of a paper figure: accepts "f1", "f2", "f3", "f4",
    "f6", "f7" (the algorithm's pseudocode run = f8 trace), "f8", "f9"
    (offline run on fig6). *)

val figure_ids : string list
