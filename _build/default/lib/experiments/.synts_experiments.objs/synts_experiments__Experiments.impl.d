lib/experiments/experiments.ml: Array Buffer Format List Option Printf String Synts_check Synts_clock Synts_core Synts_detect Synts_graph Synts_poset Synts_sync Synts_util Synts_workload
