module Bitset = Synts_util.Bitset

exception Cap_exceeded

let all_linear_extensions ?(cap = 20_000) p =
  let n = Poset.size p in
  let acc = ref [] in
  let count = ref 0 in
  (* Backtracking topological enumeration over the (closed) relation:
     an element is placeable when all its strict predecessors are placed. *)
  let pending = Array.make n 0 in
  for i = 0 to n - 1 do
    List.iter (fun j -> pending.(j) <- pending.(j) + 1) (Poset.up_set p i)
  done;
  let order = Array.make n 0 in
  let rec go idx =
    if idx = n then begin
      incr count;
      if !count > cap then raise Cap_exceeded;
      acc := Array.copy order :: !acc
    end
    else
      for v = 0 to n - 1 do
        if pending.(v) = 0 then begin
          order.(idx) <- v;
          pending.(v) <- -1;
          let succs = Poset.up_set p v in
          List.iter (fun j -> pending.(j) <- pending.(j) - 1) succs;
          go (idx + 1);
          List.iter (fun j -> pending.(j) <- pending.(j) + 1) succs;
          pending.(v) <- 0
        end
      done
  in
  match go 0 with
  | () -> Some (List.rev !acc)
  | exception Cap_exceeded -> None

let count_linear_extensions ?(max_ideals = 200_000) p =
  let n = Poset.size p in
  (* DP over downsets: the number of linear extensions of the elements in
     ideal I is the sum over maximal elements x of I of the count for
     I \ {x}. Ideals are encoded as sorted element lists (bitmask-free so
     n > 62 still works; sizes are bounded by max_ideals anyway). *)
  let module M = Map.Make (struct
    type t = int list

    let compare = compare
  end) in
  let exception Too_big in
  let table = ref M.empty in
  let rec count ideal =
    match M.find_opt ideal !table with
    | Some c -> c
    | None ->
        let c =
          match ideal with
          | [] -> 1
          | _ ->
              (* Maximal elements of the ideal: members none of whose
                 ideal-successors remain. *)
              List.fold_left
                (fun acc x ->
                  let is_maximal =
                    List.for_all (fun y -> x = y || not (Poset.lt p x y)) ideal
                  in
                  if is_maximal then
                    acc + count (List.filter (fun y -> y <> x) ideal)
                  else acc)
                0 ideal
        in
        table := M.add ideal c !table;
        if M.cardinal !table > max_ideals then raise Too_big;
        c
  in
  match count (List.init n Fun.id) with
  | c -> Some c
  | exception Too_big -> None

(* Exact set cover over "reversal sets": each linear extension covers the
   incomparable ordered pairs (i, j) it places with j below i; a realizer
   is a family covering every such pair. Returns the chosen extensions. *)
let search ~cap ~max_k p =
  let n = Poset.size p in
  if n <= 1 then Some (Some [ Poset.linear_extension p ])
  else
    match all_linear_extensions ~cap p with
    | None -> None
    | Some exts ->
        let pairs = ref [] in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j && not (Poset.leq p i j) && not (Poset.lt p j i) then
              pairs := (i, j) :: !pairs
          done
        done;
        let pairs = Array.of_list (List.rev !pairs) in
        let np = Array.length pairs in
        if np = 0 then Some (Some [ Poset.linear_extension p ])
        else begin
          let cover_set ext =
            let pos = Array.make n 0 in
            Array.iteri (fun idx e -> pos.(e) <- idx) ext;
            let s = Bitset.create np in
            Array.iteri
              (fun k (i, j) -> if pos.(j) < pos.(i) then Bitset.add s k)
              pairs;
            s
          in
          let candidates =
            List.map (fun ext -> (cover_set ext, ext)) exts
            |> List.sort_uniq (fun (a, _) (b, _) ->
                   compare (Bitset.elements a) (Bitset.elements b))
            |> Array.of_list
          in
          let full = Bitset.create np in
          Bitset.fill full;
          let rec solve covered chosen depth limit =
            if Bitset.equal covered full then Some (List.rev chosen)
            else if depth = limit then None
            else begin
              let missing = Bitset.copy full in
              Bitset.diff_into ~dst:missing covered;
              match Bitset.choose_opt missing with
              | None -> Some (List.rev chosen)
              | Some pair ->
                  Array.fold_left
                    (fun acc (s, ext) ->
                      match acc with
                      | Some _ -> acc
                      | None ->
                          if Bitset.mem s pair then begin
                            let covered' = Bitset.copy covered in
                            Bitset.union_into ~dst:covered' s;
                            solve covered' (ext :: chosen) (depth + 1) limit
                          end
                          else None)
                    None candidates
            end
          in
          let rec try_k k =
            if k > max_k then Some None
            else
              match solve (Bitset.create np) [] 0 k with
              | Some chosen -> Some (Some chosen)
              | None -> try_k (k + 1)
          in
          (* Any poset with an incomparable pair needs at least 2. *)
          try_k 2
        end

let dimension ?(cap = 20_000) ?(max_k = 8) p =
  match search ~cap ~max_k p with
  | None -> None
  | Some None -> None
  | Some (Some chosen) -> Some (List.length chosen)

let minimum_realizer ?(cap = 20_000) ?(max_k = 8) p =
  match search ~cap ~max_k p with
  | None | Some None -> None
  | Some (Some chosen) -> Some chosen
