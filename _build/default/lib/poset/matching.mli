(** Maximum bipartite matching (Hopcroft–Karp).

    Dilworth's theorem reduces minimum chain partitions — and hence the
    width bound of the paper's offline algorithm — to maximum matching in
    the bipartite "split" graph of the order relation; this module is that
    solver. Runs in O(E √V). *)

type result = {
  pair_left : int array;
      (** [pair_left.(u)] is the right vertex matched to left [u], or -1. *)
  pair_right : int array;
      (** [pair_right.(v)] is the left vertex matched to right [v], or -1. *)
  size : int;  (** Number of matched pairs. *)
}

val maximum : left:int -> right:int -> (int * int) list -> result
(** [maximum ~left ~right edges] computes a maximum matching of the
    bipartite graph with [left] left vertices, [right] right vertices and
    the given (left, right) edges. Raises [Invalid_argument] on
    out-of-range endpoints. Deterministic. *)

val min_vertex_cover :
  left:int -> right:int -> (int * int) list -> result -> bool array * bool array
(** König's theorem: from a maximum matching, a minimum vertex cover
    [(cover_left, cover_right)] of the same bipartite graph. Its complement
    is a maximum independent set — which {!Dilworth} uses to extract a
    maximum antichain. *)
