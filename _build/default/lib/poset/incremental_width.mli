(** Online poset width.

    Elements arrive in some linear-extension order (each new element is
    maximal on arrival, declared with a generating set of predecessors —
    e.g. a message's immediate predecessors on its two processes). The
    structure maintains a maximum matching of the split bipartite graph
    incrementally — one augmenting-path search per insertion — so the
    current width (Dilworth) is available at every moment:

    [width = elements − matching].

    A monitor uses this to watch how much genuine concurrency a live
    computation exhibits, and to know the smallest realizer an offline
    re-timestamping of the prefix would need. *)

type t

val create : unit -> t

val add : t -> preds:int list -> int
(** Insert the next element, given any subset of its predecessors whose
    closure is the full ancestor set (immediate predecessors suffice).
    Returns the element's id (0, 1, …). Raises [Invalid_argument] on
    out-of-range predecessor ids. *)

val size : t -> int
val width : t -> int
(** Width of the poset inserted so far (0 when empty). *)

val lt : t -> int -> int -> bool
(** Ancestor query on the inserted prefix. *)
