let comparability_edges p =
  let n = Poset.size p in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if Poset.lt p i j then acc := (i, j) :: !acc
    done
  done;
  !acc

let matching p =
  let n = Poset.size p in
  Matching.maximum ~left:n ~right:n (comparability_edges p)

let min_chain_partition p =
  let n = Poset.size p in
  let { Matching.pair_left; pair_right; size = _ } = matching p in
  (* Chain heads are elements whose right copy is unmatched (no matched
     predecessor); follow pair_left successor links. *)
  let chains = ref [] in
  for head = n - 1 downto 0 do
    if pair_right.(head) = -1 then begin
      let rec follow v acc =
        let acc = v :: acc in
        if pair_left.(v) = -1 then List.rev acc else follow pair_left.(v) acc
      in
      chains := follow head [] :: !chains
    end
  done;
  !chains

let width p =
  let n = Poset.size p in
  if n = 0 then 0 else n - (matching p).Matching.size

let max_antichain p =
  let n = Poset.size p in
  let edges = comparability_edges p in
  let m = Matching.maximum ~left:n ~right:n edges in
  let cover_left, cover_right = Matching.min_vertex_cover ~left:n ~right:n edges m in
  (* An element exposed on both sides of the cover is incomparable to every
     other exposed element. *)
  List.filter
    (fun v -> (not cover_left.(v)) && not cover_right.(v))
    (List.init n Fun.id)

let is_chain p l =
  let arr = Array.of_list l in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y -> if i < j && not (Poset.comparable p x y) then ok := false)
        arr)
    arr;
  !ok

let is_antichain p l =
  let arr = Array.of_list l in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          if i < j && (x = y || Poset.comparable p x y) then ok := false)
        arr)
    arr;
  !ok

let is_chain_partition p chains =
  let n = Poset.size p in
  let all = List.concat chains in
  List.sort compare all = List.init n Fun.id
  && List.for_all (is_chain p) chains
