(** Exact order dimension for tiny posets.

    Computing dimension is NP-complete (Yannakakis 1982, paper ref. [24]),
    which is precisely why the paper's online algorithm avoids dimension
    theory; we still want the exact value on tiny posets to validate the
    [dim ≤ width] bound that the offline algorithm relies on. The solver
    enumerates all linear extensions (capped), views each as the set of
    incomparable ordered pairs it reverses, and solves the resulting
    set-cover problem exactly. *)

val all_linear_extensions : ?cap:int -> Poset.t -> int array list option
(** Every linear extension, or [None] if there are more than [cap]
    (default 20_000). *)

val count_linear_extensions : ?max_ideals:int -> Poset.t -> int option
(** Number of linear extensions, by dynamic programming over the ideal
    (downset) lattice — exponentially faster than enumeration when the
    width is modest: e(P) = Σ over ideals of paths from ∅. [None] when
    more than [max_ideals] ideals are encountered (default 200_000). *)

val dimension : ?cap:int -> ?max_k:int -> Poset.t -> int option
(** Exact dimension, or [None] when the extension enumeration exceeds
    [cap] or no realizer of size ≤ [max_k] (default 8) exists within the
    cap. The dimension of an empty or one-element poset is 1 by
    convention here (a single extension realizes it). *)

val minimum_realizer :
  ?cap:int -> ?max_k:int -> Poset.t -> int array list option
(** A realizer of exactly {!dimension} extensions (same caps). The paper's
    PODC'01 companion shows dimension-sized vectors are necessary and
    sufficient for timestamping; this exposes the witness, at NP-hard
    cost — the contrast motivating both of the paper's algorithms. *)
