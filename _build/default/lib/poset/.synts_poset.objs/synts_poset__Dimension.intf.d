lib/poset/dimension.mli: Poset
