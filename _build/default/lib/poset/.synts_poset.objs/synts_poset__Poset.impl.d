lib/poset/poset.ml: Array Format Fun List Synts_util
