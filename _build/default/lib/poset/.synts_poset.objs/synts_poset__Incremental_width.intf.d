lib/poset/incremental_width.mli:
