lib/poset/matching.mli:
