lib/poset/realizer.ml: Array Dilworth List Poset
