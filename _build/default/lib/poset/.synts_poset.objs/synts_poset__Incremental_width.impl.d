lib/poset/incremental_width.ml: Array Int List Set
