lib/poset/dilworth.ml: Array Fun List Matching Poset
