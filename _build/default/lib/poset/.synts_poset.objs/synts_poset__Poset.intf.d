lib/poset/poset.mli: Format Synts_util
