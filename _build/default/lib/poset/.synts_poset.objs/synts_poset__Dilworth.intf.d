lib/poset/dilworth.mli: Poset
