lib/poset/dimension.ml: Array Fun List Map Poset Synts_util
