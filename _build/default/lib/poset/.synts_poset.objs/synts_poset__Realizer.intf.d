lib/poset/realizer.mli: Poset
