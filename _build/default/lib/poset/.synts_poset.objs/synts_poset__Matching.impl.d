lib/poset/matching.ml: Array List Queue
