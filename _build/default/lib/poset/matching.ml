type result = { pair_left : int array; pair_right : int array; size : int }

let build_adjacency ~left ~right edges =
  let adj = Array.make left [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= left || v < 0 || v >= right then
        invalid_arg "Matching: edge endpoint out of range";
      adj.(u) <- v :: adj.(u))
    edges;
  (* Reverse so neighbours come out in input order; sort for determinism. *)
  Array.map (List.sort_uniq compare) adj

let infinity_dist = max_int

let maximum ~left ~right edges =
  let adj = build_adjacency ~left ~right edges in
  let pair_left = Array.make left (-1) in
  let pair_right = Array.make right (-1) in
  let dist = Array.make left infinity_dist in
  let queue = Queue.create () in
  (* BFS layering from free left vertices; returns true if an augmenting
     path exists. *)
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to left - 1 do
      if pair_left.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- infinity_dist
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          match pair_right.(v) with
          | -1 -> found := true
          | u' ->
              if dist.(u') = infinity_dist then begin
                dist.(u') <- dist.(u) + 1;
                Queue.add u' queue
              end)
        adj.(u)
    done;
    !found
  in
  let rec dfs u =
    List.exists
      (fun v ->
        let take () =
          pair_left.(u) <- v;
          pair_right.(v) <- u;
          true
        in
        match pair_right.(v) with
        | -1 -> take ()
        | u' ->
            if dist.(u') = dist.(u) + 1 && dfs u' then take ()
            else false)
      adj.(u)
    ||
    begin
      dist.(u) <- infinity_dist;
      false
    end
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to left - 1 do
      if pair_left.(u) = -1 && dfs u then incr size
    done
  done;
  { pair_left; pair_right; size = !size }

let min_vertex_cover ~left ~right edges { pair_left; pair_right; size = _ } =
  let adj = build_adjacency ~left ~right edges in
  (* König: alternate BFS from unmatched left vertices; cover = unvisited
     left + visited right. *)
  let visited_left = Array.make left false in
  let visited_right = Array.make right false in
  let queue = Queue.create () in
  for u = 0 to left - 1 do
    if pair_left.(u) = -1 then begin
      visited_left.(u) <- true;
      Queue.add u queue
    end
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not visited_right.(v) then begin
          visited_right.(v) <- true;
          match pair_right.(v) with
          | -1 -> ()
          | u' ->
              if not visited_left.(u') then begin
                visited_left.(u') <- true;
                Queue.add u' queue
              end
        end)
      adj.(u)
  done;
  (Array.map not visited_left, visited_right)
