(** Binary min-heaps with explicit priorities.

    Drives the discrete-event network simulator: pending packet deliveries
    keyed by arrival time. Ties are broken by insertion order (FIFO), which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an element. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest-priority element; among equal
    priorities, the earliest-inserted. *)

val peek : 'a t -> (float * 'a) option
