type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_array t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick_array: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let sample t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  if k = 0 then [||]
  else begin
  let chosen = Hashtbl.create (2 * k) in
  (* Floyd's algorithm: for j in n-k..n-1, pick r in [0..j]; take r unless
     already taken, in which case take j. *)
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k arr.(0) in
  let i = ref 0 in
  Array.iteri
    (fun idx x ->
      if Hashtbl.mem chosen idx then begin
        out.(!i) <- x;
        incr i
      end)
    arr;
  out
  end
