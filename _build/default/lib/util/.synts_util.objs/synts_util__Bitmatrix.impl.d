lib/util/bitmatrix.ml: Array Format Queue Sys
