lib/util/rng.mli:
