lib/util/heap.mli:
