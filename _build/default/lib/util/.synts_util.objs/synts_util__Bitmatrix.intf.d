lib/util/bitmatrix.mli: Format
