(* Entries carry an insertion sequence number so equal priorities pop in
   FIFO order. *)
type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let size t = t.size

let less a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t =
  let cap = Array.length t.entries in
  if t.size = cap then begin
    let dummy = t.entries.(0) in
    let bigger = Array.make (max 8 (2 * cap)) dummy in
    Array.blit t.entries 0 bigger 0 t.size;
    t.entries <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.entries.(i) t.entries.(parent) then begin
      let tmp = t.entries.(i) in
      t.entries.(i) <- t.entries.(parent);
      t.entries.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.entries.(l) t.entries.(!smallest) then smallest := l;
  if r < t.size && less t.entries.(r) t.entries.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.entries.(i) in
    t.entries.(i) <- t.entries.(!smallest);
    t.entries.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~priority value =
  let entry = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.entries = 0 then t.entries <- Array.make 8 entry;
  grow t;
  t.entries.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let e = t.entries.(0) in
    Some (e.priority, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.entries.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.entries.(0) <- t.entries.(t.size);
      sift_down t 0
    end;
    Some (e.priority, e.value)
  end
