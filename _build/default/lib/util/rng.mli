(** Deterministic pseudo-random number generation.

    All randomized components of the library (workload generators, random
    topologies, property tests' auxiliary draws) use this SplitMix64-based
    generator so that every experiment is exactly reproducible from a seed.
    The generator is a small mutable state; [split] derives an independent
    stream, which keeps generators used by different subsystems decoupled
    even when the call order between them changes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same future stream as [t]
    without affecting [t]. *)

val split : t -> t
(** [split t] advances [t] once and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on
    [||]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Fresh shuffled copy of a list. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements uniformly (Floyd's
    algorithm); raises [Invalid_argument] if [k > Array.length arr] or
    [k < 0]. *)
