lib/clock/lamport.ml: Array Synts_poset Synts_sync
