lib/clock/fm_event.ml: Array List Synts_sync Vector
