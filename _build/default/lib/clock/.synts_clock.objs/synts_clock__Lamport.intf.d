lib/clock/lamport.mli: Synts_sync
