lib/clock/vector.mli: Format
