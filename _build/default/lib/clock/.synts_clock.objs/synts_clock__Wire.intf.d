lib/clock/wire.mli: Vector
