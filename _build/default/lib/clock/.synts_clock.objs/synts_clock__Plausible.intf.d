lib/clock/plausible.mli: Synts_sync Vector
