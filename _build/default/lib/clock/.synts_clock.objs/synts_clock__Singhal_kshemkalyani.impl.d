lib/clock/singhal_kshemkalyani.ml: Array Synts_sync Vector
