lib/clock/singhal_kshemkalyani.mli: Synts_sync Vector
