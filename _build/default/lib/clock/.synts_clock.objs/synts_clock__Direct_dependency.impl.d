lib/clock/direct_dependency.ml: Array List Synts_sync
