lib/clock/vector.ml: Array Format List String
