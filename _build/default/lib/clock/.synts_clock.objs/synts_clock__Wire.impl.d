lib/clock/wire.ml: Array Buffer Char List String
