lib/clock/fm_event.mli: Synts_sync Vector
