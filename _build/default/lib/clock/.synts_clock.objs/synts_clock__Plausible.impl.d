lib/clock/plausible.ml: Array Synts_poset Synts_sync Vector
