lib/clock/fm_sync.mli: Synts_sync Vector
