lib/clock/fm_sync.ml: Array Synts_sync Vector
