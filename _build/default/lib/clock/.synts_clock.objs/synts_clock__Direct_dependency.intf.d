lib/clock/direct_dependency.mli: Synts_sync
