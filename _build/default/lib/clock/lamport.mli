(** Lamport scalar clocks on synchronous computations.

    The cheapest baseline: one integer per message,
    [c(m) = max(c_src, c_dst) + 1]. Sound but not complete:
    [m1 ↦ m2 ⇒ c(m1) < c(m2)], while concurrent messages may get ordered
    values — the gap the vector schemes close. *)

val timestamp_trace : Synts_sync.Trace.t -> int array
(** One integer per message id. *)

val consistent_with : Synts_sync.Trace.t -> int array -> bool
(** Checks the soundness direction against the trace's message poset. *)
