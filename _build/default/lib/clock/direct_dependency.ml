module Trace = Synts_sync.Trace

type log = { preds : int list array }

let of_trace trace =
  let n = Trace.n trace in
  let last = Array.make n (-1) in
  let preds = Array.make (Trace.message_count trace) [] in
  Array.iter
    (fun (m : Trace.message) ->
      let ps =
        List.sort_uniq compare
          (List.filter (fun x -> x >= 0)
             [ last.(m.Trace.src); last.(m.Trace.dst) ])
      in
      preds.(m.Trace.id) <- ps;
      last.(m.Trace.src) <- m.Trace.id;
      last.(m.Trace.dst) <- m.Trace.id)
    (Trace.messages trace);
  { preds }

let precedes log m1 m2 =
  let count = Array.length log.preds in
  if m1 < 0 || m1 >= count || m2 < 0 || m2 >= count then
    invalid_arg "Direct_dependency.precedes: id out of range";
  (* Walk the predecessor DAG backwards from m2; ids decrease along
     predecessor edges, so pruning at m <= m1 and marking visited ids
     bounds the search. *)
  let visited = Array.make count false in
  let rec reaches m =
    m = m1
    || (m > m1
       && List.exists
            (fun p ->
              (not visited.(p))
              && begin
                   visited.(p) <- true;
                   reaches p
                 end)
            log.preds.(m))
  in
  m1 <> m2 && reaches m2

let entries_per_message = 2
