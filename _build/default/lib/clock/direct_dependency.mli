(** Fowler–Zwaenepoel direct-dependency tracking.

    Instead of piggybacking whole vectors, each message carries only a
    constant amount of data and every process logs, per message, its
    immediate predecessor messages. Precedence is then decided by a
    recursive search through the log — cheap on the wire, expensive (and
    offline) to query, exactly the trade-off the paper's related-work
    section describes. *)

type log
(** The dependency log of a completed computation: for each message, the
    ids of its at-most-two immediate predecessors (the previous message of
    each participant). *)

val of_trace : Synts_sync.Trace.t -> log

val precedes : log -> int -> int -> bool
(** [precedes log m1 m2] is the transitive search [m1 ↦ m2]. O(M) worst
    case per query (memoised within one call). *)

val entries_per_message : int
(** Piggyback cost in entries: 2 (one sequence number each way). *)
