module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset

let timestamp_trace trace =
  let n = Trace.n trace in
  let local = Array.make n 0 in
  let out = Array.make (Trace.message_count trace) 0 in
  Array.iter
    (fun (m : Trace.message) ->
      let c = 1 + max local.(m.Trace.src) local.(m.Trace.dst) in
      local.(m.Trace.src) <- c;
      local.(m.Trace.dst) <- c;
      out.(m.Trace.id) <- c)
    (Trace.messages trace);
  out

let consistent_with trace ts =
  let p = Message_poset.of_trace trace in
  let k = Poset.size p in
  Array.length ts = k
  && begin
       let ok = ref true in
       for i = 0 to k - 1 do
         for j = 0 to k - 1 do
           if Poset.lt p i j && ts.(i) >= ts.(j) then ok := false
         done
       done;
       !ok
     end
