(** Vector-order algebra (paper Equation (2)).

    Timestamps throughout the library are plain [int array]s compared with
    the strict vector order: [u < v] iff every component of [u] is ≤ the
    matching component of [v] and some component is strictly smaller. *)

type t = int array

val zero : int -> t
val copy : t -> t
val size : t -> int

val lt : t -> t -> bool
(** Strict vector order. Raises [Invalid_argument] on size mismatch. *)

val leq : t -> t -> bool
(** [lt] or structurally equal. *)

val concurrent : t -> t -> bool
(** Incomparable and distinct. *)

val compare_order : t -> t -> [ `Lt | `Gt | `Eq | `Concurrent ]
(** One-pass classification of the pair. *)

val max_into : dst:t -> t -> unit
(** Componentwise maximum, written into [dst]. *)

val merge : t -> t -> t
(** Fresh componentwise maximum. *)

val incr : t -> int -> unit
(** Increment one component in place. *)

val equal : t -> t -> bool
val to_string : t -> string
(** [(1,0,2)] style. *)

val pp : Format.formatter -> t -> unit
