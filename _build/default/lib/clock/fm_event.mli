(** Classic (asynchronous) Fidge–Mattern event clocks.

    The textbook algorithm over explicit send/receive/internal events:
    process [Pi] increments its own component at every event and merges the
    sender's vector on receives. For two events [e], [f],
    [e → f ⟺ v(e) < v(f)] — the event-level ground relation the paper's
    Sec. 5 extension is compared against once a synchronous trace is viewed
    with its acknowledgement messages. *)

val timestamps : Synts_sync.Async_trace.t -> Vector.t list array
(** [timestamps t].(p) is the vector of each of [p]'s events, aligned with
    [Async_trace.history t p]. *)

val message_vectors : Synts_sync.Async_trace.t -> Vector.t array
(** The vector of each message's {e receive} event. *)

val happened_before : Vector.t -> Vector.t -> bool
(** [Vector.lt]. *)
