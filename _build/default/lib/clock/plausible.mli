(** Plausible (comb) clocks after Torres-Rojas & Ahamad — fixed-size
    vectors that are sound but not complete.

    Process [Pi] owns component [i mod r] of an [r]-sized vector; updates
    mirror the synchronous Fidge–Mattern rule on the folded components.
    Guarantees [m1 ↦ m2 ⇒ v(m1) < v(m2)] but may order concurrent
    messages — experiment E10 measures that error rate to show why the
    paper's exact, topology-sized clocks matter for monitoring. *)

val timestamp_trace : r:int -> Synts_sync.Trace.t -> Vector.t array
(** One r-sized vector per message id, with the default [p mod r]
    component mapping. Requires [1 <= r]. *)

val timestamp_trace_with :
  classes:int array -> Synts_sync.Trace.t -> Vector.t array
(** Arbitrary process→component mapping [classes] (one entry per process,
    values in [0 .. max]); vector size is [1 + max class]. With classes =
    communication clusters this is a (sound, incomplete) stand-in for
    hierarchical cluster timestamps: intra-cluster orderings collapse. *)

val ordering_error_rate : r:int -> Synts_sync.Trace.t -> float
(** Fraction of concurrent message pairs that the r-sized plausible clocks
    falsely order, 0.0 when there are no concurrent pairs. *)

val ordering_error_rate_with : classes:int array -> Synts_sync.Trace.t -> float
