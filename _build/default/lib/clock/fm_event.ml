module Async_trace = Synts_sync.Async_trace

let timestamps t =
  let n = Async_trace.n t in
  let local = Array.init n (fun _ -> Vector.zero n) in
  let remaining = Array.init n (fun p -> Async_trace.history t p) in
  let out = Array.make n [] in
  let sent = Array.make (Async_trace.message_count t) None in
  (* Replay a causally-consistent interleaving: an event is enabled unless
     it is a receive whose matching send has not been replayed. *)
  let progress = ref true in
  let pending = ref 0 in
  Array.iter (fun evs -> pending := !pending + List.length evs) remaining;
  while !pending > 0 do
    if not !progress then
      invalid_arg "Fm_event.timestamps: no causally consistent interleaving";
    progress := false;
    for p = 0 to n - 1 do
      let continue = ref true in
      while !continue do
        match remaining.(p) with
        | [] -> continue := false
        | ev :: rest ->
            let enabled =
              match ev with
              | Async_trace.ARecv m -> sent.(m) <> None
              | Async_trace.ASend _ | Async_trace.ALocal -> true
            in
            if not enabled then continue := false
            else begin
              (match ev with
              | Async_trace.ARecv m ->
                  (match sent.(m) with
                  | Some v -> Vector.max_into ~dst:local.(p) v
                  | None -> assert false)
              | Async_trace.ASend _ | Async_trace.ALocal -> ());
              Vector.incr local.(p) p;
              (match ev with
              | Async_trace.ASend m -> sent.(m) <- Some (Vector.copy local.(p))
              | Async_trace.ARecv _ | Async_trace.ALocal -> ());
              out.(p) <- Vector.copy local.(p) :: out.(p);
              remaining.(p) <- rest;
              decr pending;
              progress := true
            end
      done
    done
  done;
  Array.map List.rev out

let message_vectors t =
  let per_process = timestamps t in
  let out = Array.make (Async_trace.message_count t) [||] in
  for p = 0 to Async_trace.n t - 1 do
    List.iter2
      (fun ev v ->
        match ev with
        | Async_trace.ARecv m -> out.(m) <- v
        | Async_trace.ASend _ | Async_trace.ALocal -> ())
      (Async_trace.history t p) per_process.(p)
  done;
  out

let happened_before = Vector.lt
