(** Fidge–Mattern message timestamps for synchronous computations — the
    N-component baseline the paper improves on.

    One component per process. For a message between [Pi] and [Pj], the two
    processes exchange vectors (the message and its acknowledgement), take
    the componentwise maximum and each increments its own component; the
    resulting common vector is the message's timestamp. This encodes
    [(M, ↦)] exactly, at O(N) space and piggyback cost per message. *)

val timestamp_trace : Synts_sync.Trace.t -> Vector.t array
(** One N-sized vector per message id. *)

val precedes : Vector.t -> Vector.t -> bool
(** [Vector.lt]. *)

val entries_per_message : n:int -> int
(** Piggyback cost in vector entries for one message + acknowledgement:
    [2 * n]. *)
