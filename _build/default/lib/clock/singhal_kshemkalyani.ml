module Trace = Synts_sync.Trace

type stats = { messages : int; entries_sent : int; full_entries : int }

let simulate trace =
  let n = Trace.n trace in
  let local = Array.init n (fun _ -> Vector.zero n) in
  (* last_sent.(i).(j) is a copy of i's vector as of the last payload i sent
     to j; only entries differing from it are transmitted. *)
  let last_sent = Array.init n (fun _ -> Array.make n [||]) in
  let changed_entries src dst v =
    let prev = last_sent.(src).(dst) in
    let count = ref 0 in
    for k = 0 to n - 1 do
      let old = if prev = [||] then 0 else prev.(k) in
      if v.(k) <> old then incr count
    done;
    last_sent.(src).(dst) <- Vector.copy v;
    !count
  in
  let out = Array.make (Trace.message_count trace) [||] in
  let entries = ref 0 in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      (* Program message carries src's diff; the ack carries dst's diff
         (of dst's pre-merge vector, as in the paper's Figure 5 line 04). *)
      entries := !entries + changed_entries src dst local.(src);
      entries := !entries + changed_entries dst src local.(dst);
      let v = Vector.merge local.(src) local.(dst) in
      Vector.incr v src;
      Vector.incr v dst;
      local.(src) <- Vector.copy v;
      local.(dst) <- v;
      out.(m.Trace.id) <- Vector.copy v)
    (Trace.messages trace);
  let messages = Trace.message_count trace in
  (out, { messages; entries_sent = !entries; full_entries = 2 * n * messages })

let average_entries_per_message stats =
  if stats.messages = 0 then 0.0
  else float_of_int stats.entries_sent /. float_of_int stats.messages
