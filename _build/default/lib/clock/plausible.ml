module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset
module Poset = Synts_poset.Poset

let timestamp_trace_with ~classes trace =
  let n = Trace.n trace in
  if Array.length classes <> n then
    invalid_arg "Plausible: need one class per process";
  let r = 1 + Array.fold_left max 0 classes in
  if Array.exists (fun c -> c < 0) classes then
    invalid_arg "Plausible: negative class";
  let local = Array.init n (fun _ -> Vector.zero r) in
  let out = Array.make (Trace.message_count trace) [||] in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let v = Vector.merge local.(src) local.(dst) in
      Vector.incr v classes.(src);
      if classes.(dst) <> classes.(src) then Vector.incr v classes.(dst);
      local.(src) <- Vector.copy v;
      local.(dst) <- v;
      out.(m.Trace.id) <- Vector.copy v)
    (Trace.messages trace);
  out

let timestamp_trace ~r trace =
  if r < 1 then invalid_arg "Plausible.timestamp_trace: r must be >= 1";
  timestamp_trace_with
    ~classes:(Array.init (Trace.n trace) (fun p -> p mod r))
    trace

let error_rate_of trace vectors =
  let p = Message_poset.of_trace trace in
  let k = Poset.size p in
  let concurrent = ref 0 and falsely_ordered = ref 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if Poset.concurrent p i j then begin
        incr concurrent;
        if not (Vector.concurrent vectors.(i) vectors.(j)) then
          incr falsely_ordered
      end
    done
  done;
  if !concurrent = 0 then 0.0
  else float_of_int !falsely_ordered /. float_of_int !concurrent

let ordering_error_rate ~r trace = error_rate_of trace (timestamp_trace ~r trace)

let ordering_error_rate_with ~classes trace =
  error_rate_of trace (timestamp_trace_with ~classes trace)
