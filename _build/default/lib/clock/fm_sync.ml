module Trace = Synts_sync.Trace

let timestamp_trace trace =
  let n = Trace.n trace in
  let local = Array.init n (fun _ -> Vector.zero n) in
  let out = Array.make (Trace.message_count trace) [||] in
  Array.iter
    (fun (m : Trace.message) ->
      let src = m.Trace.src and dst = m.Trace.dst in
      let v = Vector.merge local.(src) local.(dst) in
      Vector.incr v src;
      Vector.incr v dst;
      local.(src) <- Vector.copy v;
      local.(dst) <- v;
      out.(m.Trace.id) <- Vector.copy v)
    (Trace.messages trace);
  out

let precedes = Vector.lt
let entries_per_message ~n = 2 * n
