module ITbl = Hashtbl

type t = {
  n : int;
  mutable graph : Graph.t;
  assignment : (Graph.edge, int) ITbl.t;
  center_group : (int, int) ITbl.t;  (* star center -> group index *)
  groups : (int, int * int list ref) ITbl.t;  (* index -> (center, leaves) *)
  mutable count : int;
}

let create n =
  if n < 0 then invalid_arg "Adaptive.create: negative vertex count";
  {
    n;
    graph = Graph.empty n;
    assignment = ITbl.create 64;
    center_group = ITbl.create 16;
    groups = ITbl.create 16;
    count = 0;
  }

let vertices t = t.n

let group_of_edge t u v =
  match ITbl.find_opt t.assignment (Graph.normalize_edge u v) with
  | Some g -> g
  | None -> raise Not_found

let extend t g leaf =
  match ITbl.find_opt t.groups g with
  | Some (_, leaves) -> leaves := leaf :: !leaves
  | None -> assert false

let open_star t center leaf =
  let g = t.count in
  t.count <- g + 1;
  ITbl.replace t.groups g (center, ref [ leaf ]);
  ITbl.replace t.center_group center g;
  g

let add_edge t u v =
  let u, v = Graph.normalize_edge u v in
  if u < 0 || v >= t.n then invalid_arg "Adaptive.add_edge: vertex out of range";
  match ITbl.find_opt t.assignment (u, v) with
  | Some g -> `Known g
  | None ->
      t.graph <- Graph.add_edge t.graph u v;
      let outcome =
        match
          (ITbl.find_opt t.center_group u, ITbl.find_opt t.center_group v)
        with
        | Some g, _ ->
            extend t g v;
            `Extended g
        | None, Some g ->
            extend t g u;
            `Extended g
        | None, None ->
            (* Root the new star at the endpoint with higher current
               degree: hubs keep absorbing their future edges. *)
            let center, leaf =
              if Graph.degree t.graph u >= Graph.degree t.graph v then (u, v)
              else (v, u)
            in
            `Opened (open_star t center leaf)
      in
      let g =
        match outcome with `Extended g | `Opened g -> g | `Known g -> g
      in
      ITbl.replace t.assignment (u, v) g;
      outcome

let size t = t.count
let graph t = t.graph

let snapshot t =
  let groups =
    List.init t.count (fun g ->
        match ITbl.find_opt t.groups g with
        | Some (center, leaves) ->
            Decomposition.Star { center; leaves = List.sort compare !leaves }
        | None -> assert false)
  in
  Decomposition.make_exn t.graph groups
