(** Simple undirected graphs over vertices [0 .. n-1].

    This is the communication-topology substrate of the paper: vertices are
    processes, an edge [(i, j)] means processes [Pi] and [Pj] may exchange
    (synchronous) messages. Graphs are immutable; updates return new
    graphs. Self-loops are rejected, parallel edges are collapsed. *)

type t

type edge = int * int
(** Always normalized so the smaller endpoint comes first. *)

val normalize_edge : int -> int -> edge
(** [normalize_edge u v] is [(min u v, max u v)]. Raises [Invalid_argument]
    on a self-loop. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. Raises [Invalid_argument] when
    [n < 0]. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph on [n] vertices. Raises
    [Invalid_argument] on out-of-range endpoints or self-loops. Duplicate
    edges are collapsed. *)

val n : t -> int
(** Vertex count. *)

val m : t -> int
(** Edge count. *)

val add_edge : t -> int -> int -> t
val remove_edge : t -> int -> int -> t

val remove_vertex_edges : t -> int -> t
(** [remove_vertex_edges g v] deletes every edge incident to [v] (the vertex
    itself remains, isolated). *)

val has_edge : t -> int -> int -> bool
val degree : t -> int -> int

val neighbors : t -> int -> int list
(** Sorted increasing. *)

val edges : t -> edge list
(** All edges, normalized and sorted lexicographically. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterate normalized edges in sorted order. *)

val vertices : t -> int list
(** [0; 1; ...; n-1]. *)

val adjacent_edge_count : t -> edge -> int
(** Number of edges sharing an endpoint with the given edge (excluding
    itself) — the selection criterion of step 3 of the paper's decomposition
    algorithm. *)

val max_degree : t -> int

val is_connected : t -> bool
(** Vertices with degree 0 are ignored; the empty edge set counts as
    connected. *)

val connected_components : t -> int list list
(** Components as sorted vertex lists, including isolated vertices. *)

val is_forest : t -> bool
(** True iff the graph is acyclic. *)

val star_center : t -> int option
(** [star_center g] is [Some x] when every edge of [g] is incident to [x]
    (the paper's definition of a star, rooted at [x]); [None] otherwise.
    A graph with no edges is a star rooted at vertex 0 (or returns [Some 0]
    when [n > 0], [None] when [n = 0]). With a single edge, the smaller
    endpoint is reported. *)

val is_star : t -> bool

val triangle_of : t -> (int * int * int) option
(** [Some (x, y, z)] when the edge set is exactly the three edges of a
    triangle on [x < y < z]. *)

val is_triangle : t -> bool

val find_triangle_through : t -> int -> int -> int list
(** [find_triangle_through g u v] lists every vertex [w] such that
    [(u, w)] and [(v, w)] are both edges (so [(u, v, w)] is a triangle when
    [(u, v)] is an edge). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
