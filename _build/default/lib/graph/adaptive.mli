(** Incrementally maintained edge decompositions for dynamic topologies.

    The paper assumes the communication topology — and its edge
    decomposition — is known to all processes up front. Real systems
    discover channels as they are first used. This module maintains a
    star-only decomposition online: when a new edge arrives it joins the
    star of an endpoint that is already a center, and only otherwise opens
    a new star (rooted at its higher-degree endpoint). The group of an
    existing edge never changes, which is exactly what the timestamping
    algorithm needs ({!Synts_core.Adaptive_stamper}).

    The size is within the quality of a greedy vertex cover of the final
    graph — not the 2-approximation of the offline algorithm, the price of
    never reassigning an edge. *)

type t
(** Mutable. *)

val create : int -> t
(** [create n]: [n] vertices, no edges yet. *)

val vertices : t -> int

val group_of_edge : t -> int -> int -> int
(** Raises [Not_found] for an edge not yet added. *)

val add_edge : t -> int -> int -> [ `Known of int | `Extended of int | `Opened of int ]
(** Record a (possibly new) edge and return its group index:
    [`Known g] when the edge was already assigned, [`Extended g] when it
    joined the existing star [g], [`Opened g] when a new star was
    created. *)

val size : t -> int
(** Current number of groups. *)

val graph : t -> Graph.t
(** Edges added so far. *)

val snapshot : t -> Decomposition.t
(** The current decomposition, validated against {!graph}. *)
