type group =
  | Star of { center : int; leaves : int list }
  | Triangle of int * int * int

type t = {
  graph_n : int;
  groups : group list;
  index : (Graph.edge, int) Hashtbl.t;
}

let edges_of_group = function
  | Star { center; leaves } ->
      List.map (fun leaf -> Graph.normalize_edge center leaf) leaves
  | Triangle (x, y, z) -> [ (x, y); (x, z); (y, z) ]

let well_formed_group n = function
  | Star { center; leaves } ->
      if leaves = [] then Error "star with no edges"
      else if List.exists (fun l -> l = center) leaves then
        Error "star leaf equal to its center"
      else if
        List.exists (fun l -> l < 0 || l >= n) (center :: leaves)
      then Error "star vertex out of range"
      else if List.sort_uniq compare leaves <> leaves then
        Error "star leaves not sorted or not distinct"
      else Ok ()
  | Triangle (x, y, z) ->
      if not (0 <= x && x < y && y < z && z < n) then
        Error "triangle vertices not ordered or out of range"
      else Ok ()

let make g groups =
  let n = Graph.n g in
  let index = Hashtbl.create (2 * Graph.m g) in
  let rec check i = function
    | [] ->
        if Hashtbl.length index = Graph.m g then
          Ok { graph_n = n; groups; index }
        else Error "decomposition does not cover every edge"
    | grp :: rest -> (
        match well_formed_group n grp with
        | Error _ as e -> e
        | Ok () ->
            let dup =
              List.find_opt
                (fun (u, v) ->
                  if Hashtbl.mem index (u, v) then true
                  else if not (Graph.has_edge g u v) then true
                  else begin
                    Hashtbl.replace index (u, v) i;
                    false
                  end)
                (edges_of_group grp)
            in
            (match dup with
            | Some (u, v) ->
                Error
                  (Printf.sprintf
                     "edge (%d,%d) duplicated or absent from the graph" u v)
            | None -> check (i + 1) rest))
  in
  check 0 groups

let make_exn g groups =
  match make g groups with
  | Ok t -> t
  | Error msg -> invalid_arg ("Decomposition.make: " ^ msg)

let groups t = t.groups
let size t = List.length t.groups
let graph_vertices t = t.graph_n

let group_of_edge t u v =
  match Hashtbl.find_opt t.index (Graph.normalize_edge u v) with
  | Some i -> i
  | None -> raise Not_found

let stars t =
  List.length (List.filter (function Star _ -> true | _ -> false) t.groups)

let triangles t =
  List.length
    (List.filter (function Triangle _ -> true | _ -> false) t.groups)

type step = { phase : int; group : group }

let star_of_vertex g center =
  match Graph.neighbors g center with
  | [] -> None
  | leaves -> Some (Star { center; leaves })

(* The three steps of the paper's Figure 7 algorithm, each returning the
   residual graph after removing the emitted group's edges. *)

let find_pendant g =
  List.find_opt (fun v -> Graph.degree g v = 1) (Graph.vertices g)

let step1 g emit =
  let g = ref g in
  let continue = ref true in
  while !continue do
    match find_pendant !g with
    | None -> continue := false
    | Some x ->
        let y = List.hd (Graph.neighbors !g x) in
        (match star_of_vertex !g y with
        | Some grp -> emit { phase = 1; group = grp }
        | None -> assert false);
        g := Graph.remove_vertex_edges !g y
  done;
  !g

(* A step-2 triangle (x, y, z) needs two of its vertices to have degree
   exactly 2, i.e. no edges outside the triangle. *)
let find_step2_triangle g =
  let found = ref None in
  Graph.iter_edges
    (fun u v ->
      if !found = None && Graph.degree g u = 2 && Graph.degree g v = 2 then
        match Graph.find_triangle_through g u v with
        | w :: _ ->
            let[@warning "-8"] [ x; y; z ] = List.sort compare [ u; v; w ] in
            found := Some (x, y, z)
        | [] -> ())
    g;
  !found

let step2 g emit =
  let g = ref g in
  let continue = ref true in
  while !continue do
    match find_step2_triangle !g with
    | None -> continue := false
    | Some (x, y, z) ->
        emit { phase = 2; group = Triangle (x, y, z) };
        g := Graph.remove_edge !g x y;
        g := Graph.remove_edge !g x z;
        g := Graph.remove_edge !g y z
  done;
  !g

let step3 g emit =
  if Graph.m g = 0 then g
  else begin
    let best = ref None and best_count = ref (-1) in
    Graph.iter_edges
      (fun u v ->
        let c = Graph.adjacent_edge_count g (u, v) in
        if c > !best_count then begin
          best := Some (u, v);
          best_count := c
        end)
      g;
    match !best with
    | None -> assert false
    | Some (x, y) ->
        (* Star rooted at y takes all of y's edges (including (x, y)); the
           star rooted at x takes the rest of x's edges, if any. *)
        (match star_of_vertex g y with
        | Some grp -> emit { phase = 3; group = grp }
        | None -> assert false);
        let g = Graph.remove_vertex_edges g y in
        let g =
          match star_of_vertex g x with
          | Some grp ->
              emit { phase = 3; group = grp };
              Graph.remove_vertex_edges g x
          | None -> g
        in
        g
  end

let paper_trace g =
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  let g = ref g in
  while Graph.m !g > 0 do
    g := step1 !g emit;
    g := step2 !g emit;
    g := step3 !g emit
  done;
  List.rev !steps

let paper g = make_exn g (List.map (fun s -> s.group) (paper_trace g))

let of_vertex_cover g cover =
  if not (Vertex_cover.is_cover g cover) then
    Error "the given vertex set is not a vertex cover"
  else begin
    let cover = List.sort_uniq compare cover in
    let rank = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace rank v i) cover;
    let leaves = Hashtbl.create 16 in
    Graph.iter_edges
      (fun u v ->
        (* Assign the edge to its smallest-ranked covering endpoint. *)
        let center =
          match (Hashtbl.find_opt rank u, Hashtbl.find_opt rank v) with
          | Some ru, Some rv -> if ru <= rv then u else v
          | Some _, None -> u
          | None, Some _ -> v
          | None, None -> assert false
        in
        let other = if center = u then v else u in
        Hashtbl.replace leaves center
          (other :: Option.value ~default:[] (Hashtbl.find_opt leaves center)))
      g;
    let gs =
      List.filter_map
        (fun center ->
          match Hashtbl.find_opt leaves center with
          | None -> None
          | Some ls -> Some (Star { center; leaves = List.sort compare ls }))
        cover
    in
    make g gs
  end

let sequential g =
  (* Emitting the star of each vertex in increasing order leaves, after
     vertex N-4, only edges among the last three vertices — one final star
     or triangle. Detecting the star/triangle endgame as soon as it appears
     keeps the group count at max(1, N-2) on every graph (Theorem 5's
     fallback bound). *)
  let rec go g acc =
    if Graph.m g = 0 then List.rev acc
    else
      match Graph.star_center g with
      | Some c ->
          let grp =
            match star_of_vertex g c with Some s -> s | None -> assert false
          in
          List.rev (grp :: acc)
      | None -> (
          match Graph.triangle_of g with
          | Some (x, y, z) -> List.rev (Triangle (x, y, z) :: acc)
          | None ->
              let v =
                List.find (fun v -> Graph.degree g v > 0) (Graph.vertices g)
              in
              let grp =
                match star_of_vertex g v with
                | Some s -> s
                | None -> assert false
              in
              go (Graph.remove_vertex_edges g v) (grp :: acc))
  in
  make_exn g (go g [])

let triangles_first g =
  (* Carve disjoint triangles greedily (smallest-vertex first for
     determinism), then star-cover the leftovers. *)
  let rec carve g acc =
    let found = ref None in
    Graph.iter_edges
      (fun u v ->
        if !found = None then
          match Graph.find_triangle_through g u v with
          | w :: _ ->
              let[@warning "-8"] [ x; y; z ] = List.sort compare [ u; v; w ] in
              found := Some (x, y, z)
          | [] -> ())
      g;
    match !found with
    | Some (x, y, z) ->
        let g =
          Graph.remove_edge (Graph.remove_edge (Graph.remove_edge g x y) x z)
            y z
        in
        carve g (Triangle (x, y, z) :: acc)
    | None -> (g, List.rev acc)
  in
  let rest, triangles = carve g [] in
  let stars =
    match of_vertex_cover rest (Vertex_cover.greedy rest) with
    | Ok d -> groups d
    | Error _ -> assert false
  in
  make_exn g (triangles @ stars)

let min_size_lower_bound = Vertex_cover.size_lower_bound

exception Budget_exhausted

let exact ?(limit = 2_000_000) g =
  let initial = sequential g in
  let best = ref (groups initial) and best_size = ref (size initial) in
  (match paper g with
  | p when size p < !best_size ->
      best := groups p;
      best_size := size p
  | _ -> ());
  let nodes = ref 0 in
  let rec go g taken count =
    incr nodes;
    if !nodes > limit then raise Budget_exhausted;
    if count + min_size_lower_bound g < !best_size then
      match Graph.edges g with
      | [] ->
          best := List.rev taken;
          best_size := count
      | (u, v) :: _ ->
          (* The group holding (u, v) is a triangle through it or a maximal
             star at one endpoint (exchange argument: growing a star never
             increases the group count). *)
          List.iter
            (fun w ->
              let[@warning "-8"] [ x; y; z ] = List.sort compare [ u; v; w ] in
              let g' =
                Graph.remove_edge
                  (Graph.remove_edge (Graph.remove_edge g x y) x z)
                  y z
              in
              go g' (Triangle (x, y, z) :: taken) (count + 1))
            (Graph.find_triangle_through g u v);
          List.iter
            (fun center ->
              match star_of_vertex g center with
              | Some grp ->
                  go
                    (Graph.remove_vertex_edges g center)
                    (grp :: taken) (count + 1)
              | None -> assert false)
            [ u; v ]
  in
  match go g [] 0 with
  | () -> Some (make_exn g !best)
  | exception Budget_exhausted -> None

let best g =
  let candidates =
    [ paper g; sequential g ]
    @ (match of_vertex_cover g (Vertex_cover.greedy g) with
      | Ok d -> [ d ]
      | Error _ -> [])
    @
    match of_vertex_cover g (Vertex_cover.two_approx g) with
    | Ok d -> [ d ]
    | Error _ -> []
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
      List.fold_left (fun acc d -> if size d < size acc then d else acc) first rest

let group_of_edge_set n edges =
  (* A single group covering exactly [edges], if one exists. *)
  let g = Graph.of_edges n edges in
  match Graph.triangle_of g with
  | Some (x, y, z) -> Some (Triangle (x, y, z))
  | None -> (
      match Graph.star_center g with
      | Some center when Graph.m g > 0 ->
          Some
            (Star
               {
                 center;
                 leaves =
                   List.map
                     (fun (u, v) -> if u = center then v else u)
                     (Graph.edges g)
                   |> List.sort compare;
               })
      | _ -> None)

let improve graph t =
  let n = graph_vertices t in
  let rec pass groups =
    let arr = Array.of_list groups in
    let merged = ref None in
    let k = Array.length arr in
    (try
       for i = 0 to k - 1 do
         for j = i + 1 to k - 1 do
           if !merged = None then
             match
               group_of_edge_set n
                 (edges_of_group arr.(i) @ edges_of_group arr.(j))
             with
             | Some g -> merged := Some (i, j, g)
             | None -> ()
         done
       done
     with Exit -> ());
    match !merged with
    | None -> groups
    | Some (i, j, g) ->
        let rest =
          List.filteri (fun idx _ -> idx <> i && idx <> j) groups
        in
        pass (g :: rest)
  in
  make_exn graph (pass (groups t))

let vertex_name labels v =
  match List.assoc_opt v labels with Some s -> s | None -> string_of_int v

let pp_group ?(labels = []) ppf = function
  | Star { center; leaves } ->
      Format.fprintf ppf "star@%s {%s}" (vertex_name labels center)
        (String.concat ", "
           (List.map
              (fun l ->
                Printf.sprintf "%s-%s" (vertex_name labels center)
                  (vertex_name labels l))
              leaves))
  | Triangle (x, y, z) ->
      Format.fprintf ppf "triangle (%s, %s, %s)" (vertex_name labels x)
        (vertex_name labels y) (vertex_name labels z)

let pp ?(labels = []) ppf t =
  Format.fprintf ppf "@[<v>decomposition d=%d@," (size t);
  List.iteri
    (fun i grp ->
      Format.fprintf ppf "  E%d = %a@," (i + 1) (pp_group ~labels) grp)
    t.groups;
  Format.fprintf ppf "@]"
