(** Communication-topology generators.

    Families used throughout the paper's discussion and our experiments:
    stars, triangles, trees, complete graphs, client–server (complete
    bipartite), rings, grids, random graphs, disjoint triangles (the
    tight case for the star-only bound β(G) ≤ 2α(G)), plus faithful
    reconstructions of the paper's Figure 4 tree and Figure 2(b) graph. *)

val star : int -> Graph.t
(** [star n] is the star on [n >= 1] vertices rooted at vertex 0. *)

val triangle : unit -> Graph.t
(** The 3-cycle on vertices 0, 1, 2. *)

val complete : int -> Graph.t
(** [complete n] is K_n. *)

val path : int -> Graph.t
(** [path n] is the path 0 — 1 — … — (n-1). *)

val ring : int -> Graph.t
(** [ring n] is the cycle on [n >= 3] vertices. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: vertex [(r, c)] is [r * cols + c]. *)

val client_server : servers:int -> clients:int -> Graph.t
(** Complete bipartite K_{servers,clients}; servers are vertices
    [0 .. servers-1], clients follow. Every client can call every server,
    clients never talk to each other — the synchronous-RPC scenario of
    paper Sec. 3.3. *)

val disjoint_triangles : int -> Graph.t
(** [disjoint_triangles t] is [t] vertex-disjoint triangles — the graph
    family witnessing β(G) = 2α(G) (paper Sec. 3.3). *)

val hypercube : int -> Graph.t
(** [hypercube d] is the d-dimensional hypercube on [2^d] vertices
    (vertices adjacent iff their ids differ in one bit) — the topology of
    butterfly allreduce/allgather collectives. *)

val balanced_tree : arity:int -> depth:int -> Graph.t
(** Rooted tree where every internal node has [arity] children and leaves
    are at distance [depth] from the root (vertex 0, breadth-first
    numbering). [depth = 0] is a single vertex. *)

val random_tree : Synts_util.Rng.t -> int -> Graph.t
(** Uniform random attachment tree on [n >= 1] vertices: vertex [i > 0]
    connects to a uniform vertex in [\[0, i)]. *)

val gnp : Synts_util.Rng.t -> int -> float -> Graph.t
(** Erdős–Rényi G(n, p). *)

val random_connected : Synts_util.Rng.t -> int -> float -> Graph.t
(** A random attachment tree plus each remaining edge independently with
    probability [p]; always connected, never empty. *)

val fig4_tree : unit -> Graph.t
(** The paper's Figure 4: a 20-process tree whose edges decompose into
    exactly 3 stars (centers 0, 1, 2). *)

val fig4_expected_groups : int
(** = 3, the decomposition size shown in the paper. *)

val fig2b : unit -> Graph.t
(** Reconstruction of the paper's Figure 2(b)/Figure 8 topology on 11
    vertices labelled a..k (= 0..10). The original image is unavailable in
    the paper text, so this graph is built to reproduce the described run
    of the decomposition algorithm: step 1 emits one star, step 2 one
    triangle, step 3 two stars, and the loop back to step 1 emits the star
    containing edge (j, k); the optimal decomposition is 4 stars + 1
    triangle (size 5). *)

val fig2b_labels : (int * string) list
(** Vertex-to-letter labels a..k for printing Figure 8 runs. *)

val fig6_topology : unit -> Graph.t
(** The fully-connected 5-process system of the paper's Figure 6. *)

type spec =
  | Star of int
  | Triangle
  | Complete of int
  | Path of int
  | Ring of int
  | Grid of int * int
  | Client_server of int * int
  | Disjoint_triangles of int
  | Balanced_tree of int * int
  | Random_tree of int
  | Gnp of int * float
  | Random_connected of int * float
  | Hypercube of int
  | Fig4
  | Fig2b

val build : ?rng:Synts_util.Rng.t -> spec -> Graph.t
(** Materialize a spec; random families draw from [rng] (default seed 42). *)

val spec_of_string : string -> (spec, string) result
(** Parse CLI specs such as ["star:10"], ["complete:6"], ["grid:3x4"],
    ["cs:2x20"] (client–server), ["tree:15"], ["gnp:20:0.3"], ["fig4"],
    ["fig2b"], ["ring:8"], ["triangles:4"], ["btree:2x3"],
    ["connected:12:0.2"], ["path:7"], ["triangle"], ["hypercube:4"]. *)

val spec_to_string : spec -> string
val all_families : (string * spec) list
(** Representative instances of every family, used by the experiment
    drivers. *)

val graph_to_string : Graph.t -> string
(** Plain-text adjacency format:
    {v
    synts-topology 1
    n 6
    e 0 1
    e 0 2
    v} *)

val graph_of_string : string -> (Graph.t, string) result
(** Inverse of {!graph_to_string}; blank lines and [#] comments ignored;
    errors carry a line number. *)

val save_graph : string -> Graph.t -> unit
val load_graph : string -> (Graph.t, string) result
