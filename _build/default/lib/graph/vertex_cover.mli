(** Vertex covers of communication topologies.

    Theorem 5 of the paper bounds the timestamp size by
    [min (β(G), N - 2)] where [β(G)] is the minimum vertex-cover size; the
    pure-star edge decomposition of Theorem 5 is exactly a vertex cover with
    each edge assigned to a covering endpoint. Minimum vertex cover is
    NP-hard, so we provide the two standard polynomial heuristics plus an
    exact branch-and-bound solver for the small instances used to measure
    approximation ratios. *)

val is_cover : Graph.t -> int list -> bool
(** Every edge has at least one endpoint in the list. *)

val greedy : Graph.t -> int list
(** Repeatedly take a maximum-degree vertex and delete its edges. Sorted
    output. No worst-case guarantee (Θ(log n) ratio) but good in practice. *)

val two_approx : Graph.t -> int list
(** Endpoints of a maximal matching: at most 2β(G) vertices. Sorted. *)

val exact : ?limit:int -> Graph.t -> int list option
(** Minimum vertex cover by branch and bound (branch on a max-degree
    vertex: either it or all its neighbours join the cover). Returns [None]
    when the search exceeds [limit] explored nodes (default 1_000_000).
    Intended for graphs with up to a few dozen vertices. *)

val size_lower_bound : Graph.t -> int
(** Size of a greedy maximal matching — a lower bound on β(G). *)
