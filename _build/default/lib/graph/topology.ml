module Rng = Synts_util.Rng

let star n =
  if n < 1 then invalid_arg "Topology.star: need at least one vertex";
  Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let triangle () = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let complete n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges n !edges

let path n =
  if n < 1 then invalid_arg "Topology.path: need at least one vertex";
  Graph.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Topology.ring: need at least three vertices";
  Graph.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Topology.grid: empty grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges (rows * cols) !edges

let client_server ~servers ~clients =
  if servers < 1 || clients < 0 then
    invalid_arg "Topology.client_server: need servers >= 1, clients >= 0";
  let edges = ref [] in
  for s = 0 to servers - 1 do
    for c = 0 to clients - 1 do
      edges := (s, servers + c) :: !edges
    done
  done;
  Graph.of_edges (servers + clients) !edges

let disjoint_triangles t =
  if t < 1 then invalid_arg "Topology.disjoint_triangles: need t >= 1";
  let edges = ref [] in
  for i = 0 to t - 1 do
    let base = 3 * i in
    edges :=
      (base, base + 1) :: (base + 1, base + 2) :: (base, base + 2) :: !edges
  done;
  Graph.of_edges (3 * t) !edges

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Topology.hypercube: dimension out of range";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if v < u then edges := (v, u) :: !edges
    done
  done;
  Graph.of_edges n !edges

let balanced_tree ~arity ~depth =
  if arity < 1 || depth < 0 then
    invalid_arg "Topology.balanced_tree: need arity >= 1, depth >= 0";
  (* Breadth-first numbering: node v has children arity*v+1 .. arity*v+arity
     (the classic heap layout generalized to any arity). *)
  let rec size d = if d = 0 then 1 else 1 + (arity * size (d - 1)) in
  let n = size depth in
  let edges = ref [] in
  let rec add v d =
    if d < depth then
      for c = 1 to arity do
        let child = (arity * v) + c in
        edges := (v, child) :: !edges;
        add child (d + 1)
      done
  in
  add 0 0;
  Graph.of_edges n !edges

let random_tree rng n =
  if n < 1 then invalid_arg "Topology.random_tree: need n >= 1";
  Graph.of_edges n (List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1)))

let gnp rng n p =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.chance rng p then edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges n !edges

let random_connected rng n p =
  let g = random_tree rng n in
  let g = ref g in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if (not (Graph.has_edge !g i j)) && Rng.chance rng p then
        g := Graph.add_edge !g i j
    done
  done;
  !g

let fig4_tree () =
  (* Three star centers 0 - 1 - 2; 0 and 1 carry six leaves each, 2 carries
     five: 3 + 6 + 6 + 5 = 20 vertices, 19 edges, decomposable into the
     three stars rooted at 0, 1, 2 as in the paper's figure. *)
  let edges =
    [ (0, 1); (1, 2) ]
    @ List.init 6 (fun i -> (0, 3 + i))
    @ List.init 6 (fun i -> (1, 9 + i))
    @ List.init 5 (fun i -> (2, 15 + i))
  in
  Graph.of_edges 20 edges

let fig4_expected_groups = 3

let fig2b () =
  (* a=0 .. k=10. Designed so the decomposition algorithm's run matches the
     narrative of Figure 8; see the .mli. *)
  Graph.of_edges 11
    [
      (0, 1) (* a-b *);
      (1, 2) (* b-c *);
      (1, 3) (* b-d *);
      (4, 5) (* e-f *);
      (4, 6) (* e-g *);
      (5, 6) (* f-g *);
      (6, 7) (* g-h *);
      (6, 9) (* g-j *);
      (7, 8) (* h-i *);
      (7, 10) (* h-k *);
      (8, 9) (* i-j *);
      (8, 10) (* i-k *);
      (9, 10) (* j-k *);
    ]

let fig2b_labels =
  List.init 11 (fun i -> (i, String.make 1 (Char.chr (Char.code 'a' + i))))

let fig6_topology () = complete 5

type spec =
  | Star of int
  | Triangle
  | Complete of int
  | Path of int
  | Ring of int
  | Grid of int * int
  | Client_server of int * int
  | Disjoint_triangles of int
  | Balanced_tree of int * int
  | Random_tree of int
  | Gnp of int * float
  | Random_connected of int * float
  | Hypercube of int
  | Fig4
  | Fig2b

let build ?rng spec =
  let rng = match rng with Some r -> r | None -> Rng.create 42 in
  match spec with
  | Star n -> star n
  | Triangle -> triangle ()
  | Complete n -> complete n
  | Path n -> path n
  | Ring n -> ring n
  | Grid (r, c) -> grid r c
  | Client_server (s, c) -> client_server ~servers:s ~clients:c
  | Disjoint_triangles t -> disjoint_triangles t
  | Balanced_tree (a, d) -> balanced_tree ~arity:a ~depth:d
  | Random_tree n -> random_tree rng n
  | Gnp (n, p) -> gnp rng n p
  | Random_connected (n, p) -> random_connected rng n p
  | Hypercube d -> hypercube d
  | Fig4 -> fig4_tree ()
  | Fig2b -> fig2b ()

let spec_to_string = function
  | Star n -> Printf.sprintf "star:%d" n
  | Triangle -> "triangle"
  | Complete n -> Printf.sprintf "complete:%d" n
  | Path n -> Printf.sprintf "path:%d" n
  | Ring n -> Printf.sprintf "ring:%d" n
  | Grid (r, c) -> Printf.sprintf "grid:%dx%d" r c
  | Client_server (s, c) -> Printf.sprintf "cs:%dx%d" s c
  | Disjoint_triangles t -> Printf.sprintf "triangles:%d" t
  | Balanced_tree (a, d) -> Printf.sprintf "btree:%dx%d" a d
  | Random_tree n -> Printf.sprintf "tree:%d" n
  | Gnp (n, p) -> Printf.sprintf "gnp:%d:%g" n p
  | Random_connected (n, p) -> Printf.sprintf "connected:%d:%g" n p
  | Hypercube d -> Printf.sprintf "hypercube:%d" d
  | Fig4 -> "fig4"
  | Fig2b -> "fig2b"

let spec_of_string s =
  let int_of x = int_of_string_opt x in
  let float_of x = float_of_string_opt x in
  let pair x =
    match String.split_on_char 'x' x with
    | [ a; b ] -> (
        match (int_of a, int_of b) with
        | Some a, Some b -> Some (a, b)
        | _ -> None)
    | _ -> None
  in
  let err () = Error (Printf.sprintf "unrecognized topology spec %S" s) in
  match String.split_on_char ':' s with
  | [ "triangle" ] -> Ok Triangle
  | [ "fig4" ] -> Ok Fig4
  | [ "fig2b" ] -> Ok Fig2b
  | [ "star"; n ] -> (
      match int_of n with Some n -> Ok (Star n) | None -> err ())
  | [ "complete"; n ] -> (
      match int_of n with Some n -> Ok (Complete n) | None -> err ())
  | [ "path"; n ] -> (
      match int_of n with Some n -> Ok (Path n) | None -> err ())
  | [ "ring"; n ] -> (
      match int_of n with Some n -> Ok (Ring n) | None -> err ())
  | [ "tree"; n ] -> (
      match int_of n with Some n -> Ok (Random_tree n) | None -> err ())
  | [ "triangles"; t ] -> (
      match int_of t with Some t -> Ok (Disjoint_triangles t) | None -> err ())
  | [ "hypercube"; d ] -> (
      match int_of d with Some d -> Ok (Hypercube d) | None -> err ())
  | [ "grid"; rc ] -> (
      match pair rc with Some (r, c) -> Ok (Grid (r, c)) | None -> err ())
  | [ "cs"; sc ] -> (
      match pair sc with
      | Some (s, c) -> Ok (Client_server (s, c))
      | None -> err ())
  | [ "btree"; ad ] -> (
      match pair ad with
      | Some (a, d) -> Ok (Balanced_tree (a, d))
      | None -> err ())
  | [ "gnp"; n; p ] -> (
      match (int_of n, float_of p) with
      | Some n, Some p -> Ok (Gnp (n, p))
      | _ -> err ())
  | [ "connected"; n; p ] -> (
      match (int_of n, float_of p) with
      | Some n, Some p -> Ok (Random_connected (n, p))
      | _ -> err ())
  | _ -> err ()

let topology_magic = "synts-topology 1"

let graph_to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf topology_magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" u v))
    g;
  Buffer.contents buf

let graph_of_string s =
  let strip line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec parse lineno n edges = function
    | [] -> (
        match n with
        | None -> Error "missing vertex-count line (n <N>)"
        | Some n -> (
            match Graph.of_edges n (List.rev edges) with
            | g -> Ok g
            | exception Invalid_argument msg -> Error msg))
    | line :: rest -> (
        let lineno = lineno + 1 in
        match strip line with
        | "" -> parse lineno n edges rest
        | line when line = topology_magic -> parse lineno n edges rest
        | line -> (
            match (String.split_on_char ' ' line, n) with
            | [ "n"; count ], None -> (
                match int_of_string_opt count with
                | Some c -> parse lineno (Some c) edges rest
                | None -> err lineno "bad vertex count")
            | [ "n"; _ ], Some _ -> err lineno "duplicate vertex count"
            | _, None -> err lineno "edges before the vertex count"
            | [ "e"; a; b ], Some _ -> (
                match (int_of_string_opt a, int_of_string_opt b) with
                | Some a, Some b -> parse lineno n ((a, b) :: edges) rest
                | _ -> err lineno "bad edge endpoints")
            | _ -> err lineno (Printf.sprintf "unrecognized line %S" line)))
  in
  parse 0 None [] (String.split_on_char '\n' s)

let save_graph path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (graph_to_string g))

let load_graph path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> graph_of_string (In_channel.input_all ic))

let all_families =
  [
    ("star:8", Star 8);
    ("triangle", Triangle);
    ("complete:6", Complete 6);
    ("path:8", Path 8);
    ("ring:8", Ring 8);
    ("grid:3x4", Grid (3, 4));
    ("cs:2x10", Client_server (2, 10));
    ("triangles:3", Disjoint_triangles 3);
    ("btree:2x3", Balanced_tree (2, 3));
    ("tree:12", Random_tree 12);
    ("connected:10:0.3", Random_connected (10, 0.3));
    ("hypercube:3", Hypercube 3);
    ("fig4", Fig4);
    ("fig2b", Fig2b);
  ]
