module ISet = Set.Make (Int)

type t = { adj : ISet.t array; m : int }
type edge = int * int

let normalize_edge u v =
  if u = v then invalid_arg "Graph: self-loop"
  else if u < v then (u, v)
  else (v, u)

let empty n =
  if n < 0 then invalid_arg "Graph.empty: negative vertex count";
  { adj = Array.make n ISet.empty; m = 0 }

let n g = Array.length g.adj
let m g = g.m

let check_vertex g v =
  if v < 0 || v >= n g then invalid_arg "Graph: vertex out of range"

let has_edge g u v =
  check_vertex g u;
  check_vertex g v;
  u <> v && ISet.mem v g.adj.(u)

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  let u, v = normalize_edge u v in
  if ISet.mem v g.adj.(u) then g
  else begin
    let adj = Array.copy g.adj in
    adj.(u) <- ISet.add v adj.(u);
    adj.(v) <- ISet.add u adj.(v);
    { adj; m = g.m + 1 }
  end

let remove_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v || not (ISet.mem v g.adj.(u)) then g
  else begin
    let adj = Array.copy g.adj in
    adj.(u) <- ISet.remove v adj.(u);
    adj.(v) <- ISet.remove u adj.(v);
    { adj; m = g.m - 1 }
  end

let remove_vertex_edges g v =
  check_vertex g v;
  let removed = ISet.cardinal g.adj.(v) in
  if removed = 0 then g
  else begin
    let adj = Array.copy g.adj in
    ISet.iter (fun u -> adj.(u) <- ISet.remove v adj.(u)) adj.(v);
    adj.(v) <- ISet.empty;
    { adj; m = g.m - removed }
  end

let of_edges count edge_list =
  List.fold_left (fun g (u, v) -> add_edge g u v) (empty count) edge_list

let degree g v =
  check_vertex g v;
  ISet.cardinal g.adj.(v)

let neighbors g v =
  check_vertex g v;
  ISet.elements g.adj.(v)

let iter_edges f g =
  Array.iteri
    (fun u s -> ISet.iter (fun v -> if u < v then f u v) s)
    g.adj

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let vertices g = List.init (n g) Fun.id

let adjacent_edge_count g (u, v) =
  if not (has_edge g u v) then invalid_arg "Graph.adjacent_edge_count: no such edge";
  degree g u + degree g v - 2

let max_degree g = Array.fold_left (fun acc s -> max acc (ISet.cardinal s)) 0 g.adj

let connected_components g =
  let seen = Array.make (n g) false in
  let comps = ref [] in
  for v = 0 to n g - 1 do
    if not seen.(v) then begin
      let comp = ref [] in
      let stack = Stack.create () in
      Stack.push v stack;
      seen.(v) <- true;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        comp := u :: !comp;
        ISet.iter
          (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Stack.push w stack
            end)
          g.adj.(u)
      done;
      comps := List.sort compare !comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g =
  let non_isolated =
    List.filter (fun c -> match c with [ v ] -> degree g v > 0 | _ -> true)
      (connected_components g)
  in
  List.length non_isolated <= 1

let is_forest g =
  (* A graph is a forest iff every component has |edges| = |vertices| - 1;
     globally: m = n - #components. *)
  m g = n g - List.length (connected_components g)

let star_center g =
  if n g = 0 then None
  else
    match edges g with
    | [] -> Some 0
    | (u, v) :: _ ->
        (* Every edge must touch the center, so the center is an endpoint of
           the first edge. *)
        let incident_to x =
          List.for_all (fun (a, b) -> a = x || b = x) (edges g)
        in
        if incident_to u then Some u else if incident_to v then Some v else None

let is_star g = Option.is_some (star_center g)

let triangle_of g =
  if m g <> 3 then None
  else
    match edges g with
    | [ (a, b); (c, d); (e, f) ] ->
        let vs = List.sort_uniq compare [ a; b; c; d; e; f ] in
        (match vs with
        | [ x; y; z ]
          when has_edge g x y && has_edge g y z && has_edge g x z ->
            Some (x, y, z)
        | _ -> None)
    | _ -> None

let is_triangle g = Option.is_some (triangle_of g)

let find_triangle_through g u v =
  check_vertex g u;
  check_vertex g v;
  ISet.elements (ISet.inter g.adj.(u) g.adj.(v))

let equal a b = n a = n b && edges a = edges b

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," (n g) (m g);
  iter_edges (fun u v -> Format.fprintf ppf "  %d -- %d@," u v) g;
  Format.fprintf ppf "@]"
