lib/graph/decomposition.ml: Array Format Graph Hashtbl List Option Printf String Vertex_cover
