lib/graph/topology.ml: Buffer Char Fun Graph In_channel List Printf String Synts_util
