lib/graph/decomposition.mli: Format Graph
