lib/graph/vertex_cover.ml: Array Graph List
