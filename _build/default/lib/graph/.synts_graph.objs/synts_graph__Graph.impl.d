lib/graph/graph.ml: Array Format Fun Int List Option Set Stack
