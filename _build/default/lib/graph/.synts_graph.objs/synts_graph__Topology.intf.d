lib/graph/topology.mli: Graph Synts_util
