lib/graph/adaptive.ml: Decomposition Graph Hashtbl List
