lib/graph/adaptive.mli: Decomposition Graph
