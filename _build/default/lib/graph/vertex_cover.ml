let is_cover g cover =
  let in_cover = Array.make (Graph.n g) false in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then invalid_arg "Vertex_cover.is_cover";
      in_cover.(v) <- true)
    cover;
  let ok = ref true in
  Graph.iter_edges (fun u v -> if not (in_cover.(u) || in_cover.(v)) then ok := false) g;
  !ok

let max_degree_vertex g =
  let best = ref (-1) and best_deg = ref 0 in
  List.iter
    (fun v ->
      let d = Graph.degree g v in
      if d > !best_deg then begin
        best := v;
        best_deg := d
      end)
    (Graph.vertices g);
  if !best_deg = 0 then None else Some !best

let greedy g =
  let rec go g acc =
    match max_degree_vertex g with
    | None -> List.sort compare acc
    | Some v -> go (Graph.remove_vertex_edges g v) (v :: acc)
  in
  go g []

let greedy_maximal_matching g =
  let used = Array.make (Graph.n g) false in
  let matching = ref [] in
  Graph.iter_edges
    (fun u v ->
      if (not used.(u)) && not used.(v) then begin
        used.(u) <- true;
        used.(v) <- true;
        matching := (u, v) :: !matching
      end)
    g;
  List.rev !matching

let two_approx g =
  greedy_maximal_matching g
  |> List.concat_map (fun (u, v) -> [ u; v ])
  |> List.sort_uniq compare

let size_lower_bound g = List.length (greedy_maximal_matching g)

exception Budget_exhausted

let exact ?(limit = 1_000_000) g =
  let best = ref (two_approx g) in
  let nodes = ref 0 in
  (* Branch and bound: either the max-degree vertex is in the cover, or all
     its neighbours are. Prune with the matching lower bound. *)
  let rec go g taken count =
    incr nodes;
    if !nodes > limit then raise Budget_exhausted;
    if count + size_lower_bound g < List.length !best then
      match max_degree_vertex g with
      | None -> best := List.sort compare taken
      | Some v ->
          let neighbours = Graph.neighbors g v in
          go (Graph.remove_vertex_edges g v) (v :: taken) (count + 1);
          (* Excluding v forces all its neighbours in. *)
          let g' =
            List.fold_left (fun g u -> Graph.remove_vertex_edges g u) g neighbours
          in
          go g' (neighbours @ taken) (count + List.length neighbours)
  in
  match go g [] 0 with
  | () -> Some !best
  | exception Budget_exhausted -> None
