(** Online weak-conjunctive-predicate detection.

    The streaming counterpart of {!Predicate.possibly}: local-predicate
    intervals arrive one at a time (per monitored process, in occurrence
    order) and the monitor reports the first witness — one overlapping
    interval per monitored process — as soon as one exists, the standard
    centralized-monitor formulation of Garg–Waldecker detection.

    The incremental invariant: an interval is discarded only when it is
    {e definitely before} the head interval of some other queue, which
    certifies it can join no witness with that queue's current or later
    intervals. Hence the monitor's verdict always agrees with the offline
    algorithm on the intervals seen so far (property-tested). *)

type t

val create : processes:int list -> t
(** The monitored processes (distinct). *)

val add : t -> Predicate.interval -> Predicate.witness option
(** Feed the next interval of its process ([interval.proc] must be
    monitored; intervals of one process must arrive in occurrence order).
    Returns the witness the first time one is detected; afterwards the
    same witness is returned by {!witness} and further intervals are
    ignored. *)

val witness : t -> Predicate.witness option
(** The detected witness, if any. *)

val pending_intervals : t -> int
(** Intervals currently queued (0 once a witness was found). *)
