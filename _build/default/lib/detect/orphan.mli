(** Orphan detection for optimistic recovery.

    The paper's second motivating application (Sec. 1, refs [19, 2]): when
    a process crashes and loses its recent state, every message that
    causally depends on the lost computation is an {e orphan} and its
    recipients must roll back. Because the lost messages of the failed
    process are totally ordered (they all involve that process), a message
    is orphaned iff it causally depends on the {e earliest} lost message —
    a single O(d) vector comparison per message with the paper's
    timestamps. *)

type failure = {
  proc : int;
  survives : int;
      (** How many of the process's message participations survive the
          crash; everything after its [survives]-th message involvement is
          lost. *)
}

val lost_messages : Synts_sync.Trace.t -> failure -> int list
(** Ids of the failed process's messages wiped by the crash, in
    occurrence order. *)

val orphans :
  Synts_sync.Trace.t -> Synts_clock.Vector.t array -> failure -> int list
(** Ids of every orphaned message — the lost messages themselves plus all
    messages causally after any of them — computed purely from the
    timestamps ([v(first lost) ≤ v(m)]). Sorted. *)

val rollback_processes :
  Synts_sync.Trace.t -> Synts_clock.Vector.t array -> failure -> int list
(** The processes that participated in any orphaned message and therefore
    must roll back (always includes the failed process when it lost
    anything). Sorted. *)

val stable_messages :
  Synts_sync.Trace.t -> Synts_clock.Vector.t array -> failure -> int list
(** Complement of {!orphans}: the messages whose effects survive. *)

val orphans_multi :
  Synts_sync.Trace.t ->
  Synts_clock.Vector.t array ->
  failure list ->
  int list
(** Orphans of several simultaneous failures: messages causally after any
    failure's earliest lost message — still one vector comparison per
    (message, failure) pair. Sorted. *)

val recovery_line :
  Synts_sync.Trace.t -> checkpoints:int list array -> failure -> int array
(** The latest consistent recovery line at or before the crash.

    [checkpoints.(p)] lists the occurrence indices of process [p]'s
    checkpoints, increasing; index [k] means "p saved its state after its
    first [k] occurrences" (0 = initial state, always implicitly
    available). The failed process restarts from its latest checkpoint
    with at most [survives] message participations; rollback then
    propagates: whenever some message was sent after a process's chosen
    checkpoint but received before another's, the receiver must fall back
    to an earlier checkpoint (synchronous messages are atomic, so a
    message {e crossing} a line in either direction invalidates it).
    Returns the chosen occurrence count per process — the classic
    rollback-propagation fixpoint, here decided entirely with local
    occurrence counts. Raises [Invalid_argument] on unsorted or
    out-of-range checkpoint indices. *)
