(** Weak conjunctive predicate detection over timestamped computations.

    The paper's first motivating application (Sec. 1, refs [5, 9]): decide
    whether a conjunction of local predicates {e possibly} held — i.e.
    whether there is a consistent global state in which every named
    process's local predicate is simultaneously true. With exact message
    timestamps this reduces to finding one interval per process such that
    the chosen intervals are pairwise concurrent (Garg & Waldecker's weak
    conjunctive predicate algorithm).

    A process's local predicate is abstracted as the set of {e intervals}
    between consecutive external events during which it held; an interval
    is identified by the surrounding message timestamps, exactly like the
    internal-event stamps of paper Sec. 5. *)

type interval = {
  proc : int;
  since : Synts_clock.Vector.t;
      (** Timestamp of the last message before the predicate became true
          (zero vector if none). *)
  until : Synts_clock.Vector.t option;
      (** Timestamp of the first message after it stopped holding; [None]
          while it still holds at the end of the trace (+∞). *)
}

val interval_of_internal : Synts_core.Internal_events.stamp -> interval
(** View an internal event (the instant the predicate was sampled true) as
    the interval between its surrounding messages. *)

val overlap : interval -> interval -> bool
(** Two intervals on different processes can belong to one consistent
    global state iff neither ends before the other begins:
    [not (until a <= since b) && not (until b <= since a)] in vector
    order. Same-process intervals never overlap (a process occupies one
    interval at a time). *)

type witness = interval list
(** One interval per monitored process, pairwise overlapping. *)

val possibly :
  (int * interval list) list -> witness option
(** [possibly by_process] takes, per monitored process, the intervals in
    which its local predicate held (in occurrence order) and returns a
    witness if the conjunction possibly held. Runs the standard
    queue-elimination algorithm: repeatedly test the heads; any head that
    ends before another head begins can never be part of a witness and is
    dropped. O(total intervals × processes). *)

val definitely_ordered : interval -> interval -> bool
(** [definitely_ordered a b]: interval [a] ends before [b] begins in every
    execution consistent with the order ([until a <= since b]). *)

val possibly_cut : Synts_sync.Trace.t -> (Cuts.cut -> bool) -> bool
(** Lattice-based {e possibly}: is there a consistent cut satisfying the
    state predicate? Exhaustive (exponential in the worst case) — the
    generic fallback when the predicate is not a conjunction of local
    interval predicates; also the cross-check oracle for {!possibly}. *)

val definitely : Synts_sync.Trace.t -> (Cuts.cut -> bool) -> bool
(** Cooper–Marzullo {e definitely}: does every execution (maximal path in
    the cut lattice) pass through a cut satisfying the predicate?
    Implemented as unreachability of the final cut through ¬predicate
    cuts. *)
