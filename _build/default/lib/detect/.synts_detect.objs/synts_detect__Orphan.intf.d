lib/detect/orphan.mli: Synts_clock Synts_sync
