lib/detect/cuts.ml: Array Hashtbl List Option Queue Set Synts_sync
