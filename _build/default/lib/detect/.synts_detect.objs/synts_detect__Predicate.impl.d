lib/detect/predicate.ml: Array Cuts List Queue Set Synts_clock Synts_core
