lib/detect/wcp_monitor.ml: Array List Predicate
