lib/detect/predicate.mli: Cuts Synts_clock Synts_core Synts_sync
