lib/detect/wcp_monitor.mli: Predicate
