lib/detect/orphan.ml: Array Fun Hashtbl List Synts_clock Synts_sync
