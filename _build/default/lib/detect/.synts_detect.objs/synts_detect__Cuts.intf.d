lib/detect/cuts.mli: Synts_sync
