(** The lattice of consistent cuts of a synchronous computation.

    A cut assigns each process a prefix of its local occurrence history;
    it is consistent when every message is on the same side for both of
    its participants (a synchronous message is atomic: its two local
    occurrences advance together). Consistent cuts form a distributive
    lattice; global-predicate detection ({!Predicate.definitely}) walks it
    level by level.

    Cuts are [int array]s: [cut.(p)] = number of occurrences of process
    [p] already executed. State-space size is exponential in general; the
    walkers here are meant for the modest traces used in monitoring
    windows and tests. *)

type cut = int array

val initial : Synts_sync.Trace.t -> cut
val final : Synts_sync.Trace.t -> cut
val is_final : Synts_sync.Trace.t -> cut -> bool

val consistent : Synts_sync.Trace.t -> cut -> bool
(** Prefix lengths in range and every message entirely in or out. *)

val successors : Synts_sync.Trace.t -> cut -> cut list
(** Consistent cuts reachable by executing one more occurrence: an
    internal event advances one process; a message advances both of its
    participants atomically (enabled only when it is the next occurrence
    of each). Every returned cut is consistent. *)

val count : Synts_sync.Trace.t -> int
(** Number of consistent cuts (BFS with dedup; beware exponential
    growth). *)

val reachable :
  Synts_sync.Trace.t -> through:(cut -> bool) -> from:cut -> cut -> bool
(** [reachable t ~through ~from target]: can [target] be reached from
    [from] stepping only on cuts satisfying [through] (endpoints
    included)? *)
