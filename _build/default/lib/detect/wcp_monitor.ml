type t = {
  processes : int array;
  queues : Predicate.interval list array;  (* oldest first, per process *)
  mutable found : Predicate.witness option;
}

let create ~processes =
  let ps = Array.of_list processes in
  if Array.length ps = 0 then invalid_arg "Wcp_monitor.create: no processes";
  let sorted = List.sort_uniq compare processes in
  if List.length sorted <> Array.length ps then
    invalid_arg "Wcp_monitor.create: duplicate processes";
  { processes = ps; queues = Array.make (Array.length ps) []; found = None }

let slot t proc =
  let rec find i =
    if i >= Array.length t.processes then
      invalid_arg "Wcp_monitor: interval for an unmonitored process"
    else if t.processes.(i) = proc then i
    else find (i + 1)
  in
  find 0

(* Drop queue heads that are definitely before some other current head;
   when no queue is empty and nothing can be dropped, the heads overlap
   pairwise and form a witness. *)
let rec stabilize t =
  match t.found with
  | Some _ -> ()
  | None ->
      if Array.for_all (fun q -> q <> []) t.queues then begin
        let heads = Array.map List.hd t.queues in
        let dropped = ref false in
        Array.iteri
          (fun i h ->
            if
              Array.exists (fun h' -> Predicate.definitely_ordered h h') heads
            then begin
              t.queues.(i) <- List.tl t.queues.(i);
              dropped := true
            end)
          heads;
        if !dropped then stabilize t
        else begin
          t.found <- Some (Array.to_list heads);
          Array.iteri (fun i _ -> t.queues.(i) <- []) t.queues
        end
      end

let add t interval =
  (match t.found with
  | Some _ -> ()
  | None ->
      let i = slot t interval.Predicate.proc in
      t.queues.(i) <- t.queues.(i) @ [ interval ];
      stabilize t);
  t.found

let witness t = t.found

let pending_intervals t =
  Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues
