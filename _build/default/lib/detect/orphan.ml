module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector

type failure = { proc : int; survives : int }

let check trace { proc; survives } =
  if proc < 0 || proc >= Trace.n trace then
    invalid_arg "Orphan: process out of range";
  if survives < 0 then invalid_arg "Orphan: negative survivor count"

let messages_of_proc trace proc =
  List.filter_map
    (function
      | Trace.Msg m -> Some m.Trace.id
      | Trace.Int _ -> None)
    (Trace.process_history trace proc)

let lost_messages trace failure =
  check trace failure;
  let all = messages_of_proc trace failure.proc in
  List.filteri (fun i _ -> i >= failure.survives) all

let orphans trace timestamps failure =
  if Array.length timestamps <> Trace.message_count trace then
    invalid_arg "Orphan.orphans: timestamp count mismatch";
  match lost_messages trace failure with
  | [] -> []
  | first_lost :: _ ->
      let v0 = timestamps.(first_lost) in
      List.filter
        (fun m -> Vector.leq v0 timestamps.(m))
        (List.init (Trace.message_count trace) Fun.id)

let orphans_multi trace timestamps failures =
  List.concat_map (orphans trace timestamps) failures
  |> List.sort_uniq compare

let rollback_processes trace timestamps failure =
  let orphaned = orphans trace timestamps failure in
  List.sort_uniq compare
    (List.concat_map
       (fun m ->
         let msg = Trace.message trace m in
         [ msg.Trace.src; msg.Trace.dst ])
       orphaned)

(* History index of each message occurrence, per participant. *)
let message_positions trace =
  let positions = Hashtbl.create 32 in
  for p = 0 to Trace.n trace - 1 do
    List.iteri
      (fun idx occ ->
        match occ with
        | Trace.Msg m -> Hashtbl.replace positions (m.Trace.id, p) idx
        | Trace.Int _ -> ())
      (Trace.process_history trace p)
  done;
  positions

let recovery_line trace ~checkpoints failure =
  check trace failure;
  let n = Trace.n trace in
  if Array.length checkpoints <> n then
    invalid_arg "Orphan.recovery_line: need one checkpoint list per process";
  let history_len p = List.length (Trace.process_history trace p) in
  Array.iteri
    (fun p cps ->
      let rec sorted_in_range last = function
        | [] -> true
        | c :: rest -> last <= c && c <= history_len p && sorted_in_range c rest
      in
      if not (sorted_in_range 0 cps) then
        invalid_arg "Orphan.recovery_line: checkpoints unsorted or out of range")
    checkpoints;
  (* The crash wipes everything after the failed process's [survives]-th
     message participation, internal events included. *)
  let failed_limit =
    let msgs = ref 0 and limit = ref (history_len failure.proc) in
    List.iteri
      (fun idx occ ->
        match occ with
        | Trace.Msg _ ->
            incr msgs;
            if !msgs = failure.survives + 1 && !limit > idx then limit := idx
        | Trace.Int _ -> ())
      (Trace.process_history trace failure.proc);
    !limit
  in
  let candidates p =
    let base = 0 :: checkpoints.(p) in
    let all =
      if p = failure.proc then List.filter (fun c -> c <= failed_limit) base
      else base @ [ history_len p ]
    in
    List.sort_uniq compare all
  in
  let cut = Array.init n (fun p -> List.fold_left max 0 (candidates p)) in
  let fall_back p below =
    (* Largest candidate <= below. *)
    cut.(p) <-
      List.fold_left
        (fun acc c -> if c <= below then max acc c else acc)
        0 (candidates p)
  in
  let positions = message_positions trace in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (m : Trace.message) ->
        let ip = Hashtbl.find positions (m.Trace.id, m.Trace.src) in
        let iq = Hashtbl.find positions (m.Trace.id, m.Trace.dst) in
        let exec_p = ip < cut.(m.Trace.src) in
        let exec_q = iq < cut.(m.Trace.dst) in
        if exec_p && not exec_q then begin
          fall_back m.Trace.src ip;
          changed := true
        end
        else if exec_q && not exec_p then begin
          fall_back m.Trace.dst iq;
          changed := true
        end)
      (Trace.messages trace)
  done;
  cut

let stable_messages trace timestamps failure =
  let orphaned = orphans trace timestamps failure in
  List.filter
    (fun m -> not (List.mem m orphaned))
    (List.init (Trace.message_count trace) Fun.id)
