module Vector = Synts_clock.Vector
module Internal_events = Synts_core.Internal_events

type interval = {
  proc : int;
  since : Vector.t;
  until : Vector.t option;
}

let interval_of_internal (s : Internal_events.stamp) =
  { proc = s.Internal_events.proc;
    since = s.Internal_events.prev;
    until = s.Internal_events.succ }

let definitely_ordered a b =
  match a.until with
  | Some u -> Vector.leq u b.since
  | None -> false

let overlap a b =
  a.proc <> b.proc
  && (not (definitely_ordered a b))
  && not (definitely_ordered b a)

type witness = interval list

let possibly by_process =
  let queues = Array.of_list (List.map snd by_process) in
  let k = Array.length queues in
  let exception No_witness in
  let head i =
    match queues.(i) with [] -> raise No_witness | h :: _ -> h
  in
  let rec search () =
    let heads = Array.init k head in
    (* Every head that is definitely before some other head cannot take
       part in a witness containing the current (or any later) heads of
       the other queues: drop it. *)
    let dropped = ref false in
    for i = 0 to k - 1 do
      let ordered_before_someone =
        Array.exists (fun h -> definitely_ordered heads.(i) h) heads
      in
      if ordered_before_someone then begin
        queues.(i) <- List.tl queues.(i);
        dropped := true
      end
    done;
    if !dropped then search ()
    else begin
      (* No head precedes another: with exact timestamps this means every
         cross-process pair overlaps. *)
      Array.to_list heads
    end
  in
  match search () with
  | witness -> Some witness
  | exception No_witness -> None

let possibly_cut trace pred =
  let exception Found in
  let module CutSet = Set.Make (struct
    type t = int array

    let compare = compare
  end) in
  let seen = ref CutSet.empty in
  let queue = Queue.create () in
  let push c =
    if not (CutSet.mem c !seen) then begin
      seen := CutSet.add c !seen;
      Queue.add c queue
    end
  in
  push (Cuts.initial trace);
  match
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      if pred c then raise Found;
      List.iter push (Cuts.successors trace c)
    done
  with
  | () -> false
  | exception Found -> true

let definitely trace pred =
  (* Every execution is a maximal path from the initial to the final cut;
     the predicate definitely holds iff no such path avoids it. *)
  not
    (Cuts.reachable trace
       ~through:(fun c -> not (pred c))
       ~from:(Cuts.initial trace) (Cuts.final trace))
