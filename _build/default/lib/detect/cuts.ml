module Trace = Synts_sync.Trace

type cut = int array

(* Per-process occurrence arrays, cached per call via closures would be
   cleaner; recomputing is fine at test scale. *)
let histories trace =
  Array.init (Trace.n trace) (fun p ->
      Array.of_list (Trace.process_history trace p))

let initial trace = Array.make (Trace.n trace) 0
let final trace = Array.map Array.length (histories trace)
let is_final trace cut = cut = final trace

let consistent trace cut =
  let hists = histories trace in
  Array.length cut = Trace.n trace
  && Array.for_all2 (fun k h -> 0 <= k && k <= Array.length h) cut hists
  && begin
       (* Each executed message occurrence must be executed on the other
          side too. *)
       let executed_msg p k =
         match hists.(p).(k) with
         | Trace.Msg m -> Some m.Trace.id
         | Trace.Int _ -> None
       in
       let executed = Hashtbl.create 16 in
       Array.iteri
         (fun p kp ->
           for k = 0 to kp - 1 do
             match executed_msg p k with
             | Some id ->
                 Hashtbl.replace executed id
                   (1 + Option.value ~default:0 (Hashtbl.find_opt executed id))
             | None -> ()
           done)
         cut;
       Hashtbl.fold (fun _ c acc -> acc && c = 2) executed true
     end

let successors trace cut =
  let hists = histories trace in
  let n = Trace.n trace in
  let next p = if cut.(p) < Array.length hists.(p) then Some hists.(p).(cut.(p)) else None in
  let out = ref [] in
  for p = 0 to n - 1 do
    match next p with
    | None -> ()
    | Some (Trace.Int _) ->
        let c = Array.copy cut in
        c.(p) <- c.(p) + 1;
        out := c :: !out
    | Some (Trace.Msg m) ->
        (* Advance both endpoints together; only emit once (from the
           src side) and only when the peer is also ready. *)
        let peer = if m.Trace.src = p then m.Trace.dst else m.Trace.src in
        if p = min m.Trace.src m.Trace.dst then begin
          match next peer with
          | Some (Trace.Msg m') when m'.Trace.id = m.Trace.id ->
              let c = Array.copy cut in
              c.(p) <- c.(p) + 1;
              c.(peer) <- c.(peer) + 1;
              out := c :: !out
          | _ -> ()
        end
  done;
  List.rev !out

module CutSet = Set.Make (struct
  type t = int array

  let compare = compare
end)

let count trace =
  let seen = ref CutSet.empty in
  let queue = Queue.create () in
  let push c =
    if not (CutSet.mem c !seen) then begin
      seen := CutSet.add c !seen;
      Queue.add c queue
    end
  in
  push (initial trace);
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    List.iter push (successors trace c)
  done;
  CutSet.cardinal !seen

let reachable trace ~through ~from target =
  if not (through from) then false
  else begin
    let seen = ref CutSet.empty in
    let queue = Queue.create () in
    let found = ref false in
    let push c =
      if (not (CutSet.mem c !seen)) && through c then begin
        seen := CutSet.add c !seen;
        Queue.add c queue
      end
    in
    push from;
    while (not !found) && not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      if c = target then found := true
      else List.iter push (successors trace c)
    done;
    !found
  end
