module Rng = Synts_util.Rng
module Graph = Synts_graph.Graph
module Trace = Synts_sync.Trace

let random rng ~topology ~messages ?(internal_prob = 0.0) () =
  let edges = Array.of_list (Graph.edges topology) in
  if Array.length edges = 0 && messages > 0 then
    invalid_arg "Workload.random: topology has no edges";
  let steps = ref [] in
  for _ = 1 to messages do
    if Rng.chance rng internal_prob then
      steps := Trace.Local (Rng.int rng (Graph.n topology)) :: !steps;
    let u, v = Rng.pick_array rng edges in
    let src, dst = if Rng.bool rng then (u, v) else (v, u) in
    steps := Trace.Send (src, dst) :: !steps
  done;
  Trace.of_steps_exn ~n:(Graph.n topology) (List.rev !steps)

let client_server rng ~servers ~clients ~requests ?(think = true) () =
  if servers < 1 || clients < 1 then
    invalid_arg "Workload.client_server: need servers >= 1 and clients >= 1";
  let n = servers + clients in
  let steps = ref [] in
  for _ = 1 to requests do
    let client = servers + Rng.int rng clients in
    let server = Rng.int rng servers in
    steps := Trace.Send (client, server) :: !steps;
    if think then steps := Trace.Local server :: !steps;
    steps := Trace.Send (server, client) :: !steps
  done;
  Trace.of_steps_exn ~n (List.rev !steps)

let pipeline ~stages ~items =
  if stages < 2 || items < 1 then
    invalid_arg "Workload.pipeline: need stages >= 2 and items >= 1";
  (* Diagonal schedule: at "tick" t, item i moves from stage t-i to t-i+1.
     Within a tick, even stages fire before odd ones — any monotone stage
     order would place the stage s+1 transfer between the stage s and
     stage s+2 transfers, transitively chaining them, whereas the real
     pipeline performs the simultaneous transfers concurrently. *)
  let steps = ref [] in
  for t = 0 to items + stages - 3 do
    let eligible =
      List.filter
        (fun s -> 0 <= t - s && t - s <= items - 1)
        (List.init (stages - 1) Fun.id)
    in
    let evens, odds = List.partition (fun s -> s mod 2 = 0) eligible in
    List.iter
      (fun s -> steps := Trace.Send (s, s + 1) :: !steps)
      (evens @ odds)
  done;
  Trace.of_steps_exn ~n:stages (List.rev !steps)

let ring_token ~n ~laps =
  if n < 2 || laps < 1 then
    invalid_arg "Workload.ring_token: need n >= 2 and laps >= 1";
  let steps = ref [] in
  for _ = 1 to laps do
    for p = 0 to n - 1 do
      steps := Trace.Send (p, (p + 1) mod n) :: !steps
    done
  done;
  Trace.of_steps_exn ~n (List.rev !steps)

let tree_sweep tree ~root ~rounds =
  if root < 0 || root >= Graph.n tree then
    invalid_arg "Workload.tree_sweep: root out of range";
  if not (Graph.is_forest tree) then
    invalid_arg "Workload.tree_sweep: graph is not a forest";
  (* Children by BFS from the root; unreachable vertices are ignored. *)
  let parent = Array.make (Graph.n tree) (-1) in
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add root queue;
  parent.(root) <- root;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    List.iter
      (fun w ->
        if parent.(w) < 0 then begin
          parent.(w) <- v;
          Queue.add w queue
        end)
      (Graph.neighbors tree v)
  done;
  let pre_order = List.rev !order in
  let post_order = !order in
  let steps = ref [] in
  for _ = 1 to rounds do
    (* Up-sweep: every non-root node reports to its parent, children
       first. *)
    List.iter
      (fun v -> if v <> root then steps := Trace.Send (v, parent.(v)) :: !steps)
      post_order;
    (* Down-sweep: the root's decision propagates back down. *)
    List.iter
      (fun v -> if v <> root then steps := Trace.Send (parent.(v), v) :: !steps)
      pre_order
  done;
  Trace.of_steps_exn ~n:(Graph.n tree) (List.rev !steps)

let allreduce ~dim ~rounds =
  if dim < 1 || rounds < 1 then
    invalid_arg "Workload.allreduce: need dim >= 1 and rounds >= 1";
  let n = 1 lsl dim in
  let steps = ref [] in
  for _ = 1 to rounds do
    for b = 0 to dim - 1 do
      for v = 0 to n - 1 do
        let peer = v lxor (1 lsl b) in
        if v < peer then begin
          steps := Trace.Send (v, peer) :: !steps;
          steps := Trace.Send (peer, v) :: !steps
        end
      done
    done
  done;
  Trace.of_steps_exn ~n (List.rev !steps)

let all_directions g =
  let steps =
    List.concat_map
      (fun (u, v) -> [ Trace.Send (u, v); Trace.Send (v, u) ])
      (Graph.edges g)
  in
  Trace.of_steps_exn ~n:(Graph.n g) steps
