(** Synchronous-computation workload generators.

    Every generator is deterministic from its {!Synts_util.Rng.t} and emits
    a linearized {!Synts_sync.Trace.t}. Any interleaving of instantaneous
    messages along a topology is a valid synchronous computation, so
    generation is simply: repeatedly pick a channel and a direction
    (respecting the topology), occasionally inserting internal events. *)

val random :
  Synts_util.Rng.t ->
  topology:Synts_graph.Graph.t ->
  messages:int ->
  ?internal_prob:float ->
  unit ->
  Synts_sync.Trace.t
(** Uniform random edge + direction per message; before each message an
    internal event of a random process is inserted with probability
    [internal_prob] (default 0). Raises [Invalid_argument] if the topology
    has no edges and [messages > 0]. *)

val client_server :
  Synts_util.Rng.t ->
  servers:int ->
  clients:int ->
  requests:int ->
  ?think:bool ->
  unit ->
  Synts_sync.Trace.t
(** Synchronous-RPC workload on the complete bipartite topology: each
    request is a client→server call immediately answered by a server→client
    reply; [think] (default true) adds an internal "handler" event at the
    server between call and reply. Processes 0..servers-1 are servers. *)

val pipeline : stages:int -> items:int -> Synts_sync.Trace.t
(** Each of [items] items traverses [P0 → P1 → … → P_(stages-1)];
    consecutive items overlap (item i+1 enters stage s after item i left
    it), giving genuinely concurrent messages between distant stages. *)

val ring_token : n:int -> laps:int -> Synts_sync.Trace.t
(** A token circulating a ring [laps] times — a fully sequential
    computation: its message poset is a chain. *)

val tree_sweep :
  Synts_graph.Graph.t -> root:int -> rounds:int -> Synts_sync.Trace.t
(** On a tree: [rounds] repetitions of an aggregation up-sweep (post-order,
    child→parent) followed by a broadcast down-sweep (pre-order,
    parent→child) — the hierarchical monitoring pattern of paper Fig. 4.
    Raises [Invalid_argument] when the graph is not a tree containing
    [root]. *)

val allreduce : dim:int -> rounds:int -> Synts_sync.Trace.t
(** Butterfly allreduce on the [2^dim]-process hypercube: in phase [b]
    every pair of processes differing in bit [b] exchanges (lower id sends
    first); [rounds] full reductions. The classic HPC collective whose
    message order a monitor may want to check. *)

val all_directions : Synts_graph.Graph.t -> Synts_sync.Trace.t
(** One message in each direction over every edge, in a fixed order —
    a cheap deterministic smoke workload exercising every channel. *)
