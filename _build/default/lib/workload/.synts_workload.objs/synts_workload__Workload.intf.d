lib/workload/workload.mli: Synts_graph Synts_sync Synts_util
