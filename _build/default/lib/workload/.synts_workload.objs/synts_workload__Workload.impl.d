lib/workload/workload.ml: Array Fun List Queue Synts_graph Synts_sync Synts_util
