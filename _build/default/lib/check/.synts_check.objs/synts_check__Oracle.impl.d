lib/check/oracle.ml: Array Synts_poset Synts_sync Synts_util
