lib/check/validate.mli: Format Synts_clock Synts_core Synts_poset Synts_sync
