lib/check/validate.ml: Array Format List Oracle Synts_clock Synts_core Synts_poset Synts_sync
