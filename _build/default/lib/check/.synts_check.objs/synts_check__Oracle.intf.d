lib/check/oracle.mli: Synts_poset Synts_sync
