module Trace = Synts_sync.Trace
module Happened_before = Synts_sync.Happened_before
module Poset = Synts_poset.Poset
module Bitmatrix = Synts_util.Bitmatrix

let message_poset trace =
  let msgs = Trace.messages trace in
  let k = Array.length msgs in
  let m = Bitmatrix.create k in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then begin
        let a = msgs.(i) and b = msgs.(j) in
        let shares =
          Trace.involves b a.Trace.src || Trace.involves b a.Trace.dst
        in
        if shares && a.Trace.pos < b.Trace.pos then Bitmatrix.set m i j true
      end
    done
  done;
  Bitmatrix.transitive_closure m;
  Poset.of_closed_matrix m

let happened_before_internal trace =
  let hb = Happened_before.of_trace trace in
  fun i j -> Happened_before.internal_hb trace hb i j
