(** Brute-force ground truth, implemented independently of the library's
    fast paths.

    {!Synts_sync.Message_poset} builds [(M, ↦)] from consecutive
    per-process pairs; this oracle instead materializes the {e full} direct
    relation [▷] — every pair of messages sharing a participant — and
    closes it with Warshall over a bit-matrix. Agreement between the two is
    itself a test; every timestamping scheme is validated against this
    one. *)

val message_poset : Synts_sync.Trace.t -> Synts_poset.Poset.t
(** [(M, ↦)] from the full quadratic direct relation. *)

val happened_before_internal :
  Synts_sync.Trace.t -> (int -> int -> bool)
(** [happened_before_internal t] is a query [i j] deciding whether internal
    event [i] happened before internal event [j], from the merged-node
    event DAG ({!Synts_sync.Happened_before}). *)
