lib/session/session.mli: Synts_clock Synts_core Synts_graph
