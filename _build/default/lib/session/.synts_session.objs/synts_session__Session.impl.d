lib/session/session.ml: Array List Option Synts_clock Synts_core Synts_graph Synts_monitor Synts_poset
