lib/net/rendezvous.mli: Script Synts_clock Synts_graph Synts_sync
