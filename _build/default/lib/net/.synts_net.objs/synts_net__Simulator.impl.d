lib/net/simulator.ml: Array Float Synts_util
