lib/net/script.ml: Array Buffer Format List Option Printf String Synts_sync
