lib/net/script.mli: Format Synts_sync
