lib/net/simulator.mli:
