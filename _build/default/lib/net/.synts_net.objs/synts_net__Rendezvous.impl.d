lib/net/rendezvous.ml: Array Fun Hashtbl List Option Script Simulator Synts_clock Synts_core Synts_sync
