(** Discrete-event asynchronous network simulator.

    The substrate under the rendezvous protocol: point-to-point packets
    with pseudo-random delivery delays (deterministic from the seed),
    optionally FIFO per directed channel. Protocols are callback-driven:
    {!run} drains the event queue, invoking the handler for each delivery;
    the handler may {!send} further packets. *)

type 'p t

val create :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?fifo:bool ->
  ?loss:float ->
  n:int ->
  unit ->
  'p t
(** [n] processes. Delays are uniform in [\[min_delay, max_delay\]]
    (defaults 1.0 and 10.0); [fifo] (default true) forces per-channel
    in-order delivery; [loss] (default 0) drops each packet independently
    with that probability (timers never drop). *)

val n : 'p t -> int

val send : 'p t -> src:int -> dst:int -> 'p -> unit
(** Schedule a packet delivery. Raises [Invalid_argument] on bad
    endpoints (self-sends included — the network is for remote pairs). *)

val now : 'p t -> float
(** Current simulation time (the delivery time of the packet being
    handled, or 0 before the first). *)

val packets : 'p t -> int
(** Packets sent so far (lost ones included — they consumed bandwidth). *)

val lost : 'p t -> int
(** Packets dropped by the network. *)

val timer : 'p t -> delay:float -> proc:int -> 'p -> unit
(** Schedule a local timer: after exactly [delay], the handler fires with
    [src = dst = proc] and the payload. Timers are reliable and bypass
    FIFO ordering. *)

val run : 'p t -> on_deliver:(src:int -> dst:int -> 'p -> unit) -> float
(** Drain the queue; returns the makespan (time of the last delivery).
    The handler runs sequentially — one delivery at a time — so protocol
    state needs no synchronization. *)
