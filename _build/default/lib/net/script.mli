(** Per-process communication scripts.

    The network layer runs each process against a fixed script of
    communication intents — the projection of a synchronous computation
    onto one process. Scripts are what a real CSP program's communication
    skeleton looks like to the protocol. *)

type intent =
  | Send_to of int  (** Blocking synchronous send. *)
  | Recv_from of int  (** Receive from one specific peer. *)
  | Recv_any  (** Receive from whoever offers first. *)
  | Internal  (** A local event. *)

type t = intent list

val of_trace : ?recv_any:bool -> Synts_sync.Trace.t -> t array
(** Project a synchronous trace: each process's participations become
    [Send_to]/[Recv_from] intents in local order ([Recv_any] instead when
    [recv_any], default false). Replaying the scripts over the rendezvous
    protocol realizes a computation with the same per-process orders. *)

val sends : t -> int
val recvs : t -> int
val pp : Format.formatter -> t -> unit

val system_to_string : t array -> string
(** A parseable description of a whole system, one process per line:

    {v
    P0: !1 . # . ?2
    P1: ?0 . !2
    P2: ?1 . ?*
    v}

    [!k] sends to process [k], [?k] receives from [k], [?*] receives from
    anyone, [#] is an internal event. *)

val parse_system : string -> (t array, string) result
(** Inverse of {!system_to_string}. Blank lines and [//]-to-end-of-line
    comments are ignored. Every process in [P0 .. Pmax] must be declared
    at most once; undeclared ids below the maximum get empty scripts.
    Errors carry a line number. *)
