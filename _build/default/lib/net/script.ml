module Trace = Synts_sync.Trace

type intent = Send_to of int | Recv_from of int | Recv_any | Internal
type t = intent list

let of_trace ?(recv_any = false) trace =
  Array.init (Trace.n trace) (fun p ->
      List.map
        (function
          | Trace.Msg m ->
              if m.Trace.src = p then Send_to m.Trace.dst
              else if recv_any then Recv_any
              else Recv_from m.Trace.src
          | Trace.Int _ -> Internal)
        (Trace.process_history trace p))

let sends t =
  List.length (List.filter (function Send_to _ -> true | _ -> false) t)

let recvs t =
  List.length
    (List.filter (function Recv_from _ | Recv_any -> true | _ -> false) t)

let intent_to_string = function
  | Send_to d -> Printf.sprintf "!%d" d
  | Recv_from s -> Printf.sprintf "?%d" s
  | Recv_any -> "?*"
  | Internal -> "#"

let system_to_string scripts =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun p script ->
      Buffer.add_string buf
        (Printf.sprintf "P%d: %s\n" p
           (String.concat " . " (List.map intent_to_string script))))
    scripts;
  Buffer.contents buf

let parse_intent token =
  let arg s =
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some k when k >= 0 -> Some k
    | _ -> None
  in
  if token = "#" then Some Internal
  else if token = "?*" then Some Recv_any
  else if String.length token >= 2 && token.[0] = '!' then
    Option.map (fun k -> Send_to k) (arg token)
  else if String.length token >= 2 && token.[0] = '?' then
    Option.map (fun k -> Recv_from k) (arg token)
  else None

let parse_system text =
  let strip line =
    let line =
      (* Comments run from "//" to end of line. *)
      let rec find i =
        if i + 1 >= String.length line then None
        else if line.[i] = '/' && line.[i + 1] = '/' then Some i
        else find (i + 1)
      in
      match find 0 with Some i -> String.sub line 0 i | None -> line
    in
    String.trim line
  in
  let entries = ref [] in
  let error = ref None in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let fail msg =
        if !error = None then
          error := Some (Printf.sprintf "line %d: %s" lineno msg)
      in
      match strip raw with
      | "" -> ()
      | line -> (
          match String.index_opt line ':' with
          | None -> fail "expected `P<id>: intents`"
          | Some colon ->
              let head = String.trim (String.sub line 0 colon) in
              let body =
                String.trim
                  (String.sub line (colon + 1) (String.length line - colon - 1))
              in
              let pid =
                if String.length head >= 2 && head.[0] = 'P' then
                  int_of_string_opt (String.sub head 1 (String.length head - 1))
                else None
              in
              (match pid with
              | None -> fail "process names look like P0, P1, ..."
              | Some pid when pid < 0 -> fail "negative process id"
              | Some pid ->
                  if List.mem_assoc pid !entries then
                    fail (Printf.sprintf "duplicate process P%d" pid)
                  else begin
                    let tokens =
                      String.split_on_char '.' body
                      |> List.map String.trim
                      |> List.filter (fun s -> s <> "")
                    in
                    let intents =
                      List.map
                        (fun tok ->
                          match parse_intent tok with
                          | Some i -> i
                          | None ->
                              fail (Printf.sprintf "unrecognized intent %S" tok);
                              Internal)
                        tokens
                    in
                    entries := (pid, intents) :: !entries
                  end)))
    (String.split_on_char '\n' text);
  match !error with
  | Some e -> Error e
  | None ->
      if !entries = [] then Error "no processes declared"
      else begin
        let n = 1 + List.fold_left (fun acc (p, _) -> max acc p) 0 !entries in
        Ok
          (Array.init n (fun p ->
               Option.value ~default:[] (List.assoc_opt p !entries)))
      end

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf -> function
         | Send_to d -> Format.fprintf ppf "!%d" d
         | Recv_from s -> Format.fprintf ppf "?%d" s
         | Recv_any -> Format.fprintf ppf "?*"
         | Internal -> Format.fprintf ppf "#"))
    t
