(** Synchronous messaging over an asynchronous network — the protocol
    layer the paper presupposes.

    Synchronous sends are implemented the standard way (Murty & Garg,
    paper ref. [16]): the sender transmits a REQ packet and {e blocks};
    the receiver, once it reaches a matching receive, consumes the REQ and
    replies with an ACK, unblocking the sender. The paper's Figure 5
    piggybacks its vectors on exactly these two packets: the REQ carries
    the sender's vector, the ACK the receiver's pre-merge vector, and both
    sides then agree on the message's timestamp.

    Running a set of {!Script} processes yields the {e induced}
    synchronous computation: messages ordered by their rendezvous instants
    (the moment the receiver consumes the REQ). The sender is blocked
    around that instant, so per-process event orders are consistent and
    the induced computation is always synchronizable — property-tested.

    Deadlock note: scripts projected from a valid synchronous trace with
    [Recv_from] pairing never deadlock (the original linearization
    schedules them); with [Recv_any] matching is first-come-first-served
    and remains deadlock-free for projected scripts, but hand-written
    scripts can of course deadlock — the outcome reports who got stuck and
    the induced prefix is still a valid computation. *)

type outcome = {
  trace : Synts_sync.Trace.t;
      (** The induced synchronous computation (rendezvous order), including
          the prefix executed before any deadlock. *)
  timestamps : Synts_clock.Vector.t array option;
      (** Per message of [trace], when a decomposition was supplied. *)
  deadlocked : int list;  (** Processes whose script did not complete. *)
  packets : int;  (** Packets transmitted (2 per message when lossless). *)
  lost : int;  (** Packets the network dropped. *)
  makespan : float;  (** Simulated completion time. *)
}

val run :
  ?seed:int ->
  ?min_delay:float ->
  ?max_delay:float ->
  ?fifo:bool ->
  ?loss:float ->
  ?retransmit:float ->
  ?max_retransmits:int ->
  ?decomposition:Synts_graph.Decomposition.t ->
  Script.t array ->
  outcome
(** Execute the scripts (index = process id) over the simulated network.
    Deterministic from [seed].

    With [loss > 0] (default 0), each packet independently drops with
    that probability; senders then retransmit unacknowledged REQs every
    [retransmit] time units (default 40), up to [max_retransmits] times,
    and receivers deduplicate by per-sender sequence number, replaying
    the stored ACK for already-consumed requests — so each rendezvous
    still happens exactly once and timestamps stay exact (property
    tested). *)
