(** Online timestamping without prior topology knowledge.

    The paper's algorithm assumes every process knows the edge
    decomposition in advance. This extension drops that assumption: the
    decomposition is grown incrementally ({!Synts_graph.Adaptive}) as
    channels are first used, and vectors grow with it. A timestamp issued
    when [d] groups existed has [d] components; comparisons pad the
    shorter vector with zeros.

    Why this stays exact: a run of the adaptive stamper produces, message
    for message, the same values as running the standard algorithm with
    the {e final} decomposition from the start — components of groups that
    do not exist yet would have been 0 anyway. Padding reads those zeros
    back, so Theorem 4 transfers verbatim. The property tests check
    exactness against the oracle on random unknown-topology runs. *)

type t

val create : int -> t
(** [create n] for [n] processes; no channels known yet. *)

val stamp : t -> src:int -> dst:int -> Synts_clock.Vector.t
(** Timestamp the next message (in linearization order). First use of a
    channel may grow the decomposition; the returned vector has as many
    components as there are groups at that moment. *)

val dimension : t -> int
(** Current number of groups. *)

val decomposition : t -> Synts_graph.Decomposition.t
(** Snapshot of the grown decomposition. *)

val compare_padded :
  Synts_clock.Vector.t -> Synts_clock.Vector.t ->
  [ `Lt | `Gt | `Eq | `Concurrent ]
(** Vector order after zero-padding the shorter vector. *)

val precedes : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
val concurrent : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
