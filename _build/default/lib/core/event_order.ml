module Vector = Synts_clock.Vector

type event = Message of int | Internal of int

type t = {
  message_vectors : Vector.t array;
  internal_stamps : Internal_events.stamp array;
}

let of_stamps ~message_vectors ~internal_stamps =
  { message_vectors; internal_stamps }

let of_trace decomposition trace =
  let message_vectors = Online.timestamp_trace decomposition trace in
  {
    message_vectors;
    internal_stamps = Internal_events.of_trace_with message_vectors trace;
  }

let vector t m =
  if m < 0 || m >= Array.length t.message_vectors then
    invalid_arg "Event_order: message id out of range";
  t.message_vectors.(m)

let stamp t e =
  if e < 0 || e >= Array.length t.internal_stamps then
    invalid_arg "Event_order: internal id out of range";
  t.internal_stamps.(e)

let happened_before t a b =
  match (a, b) with
  | Message m1, Message m2 -> Vector.lt (vector t m1) (vector t m2)
  | Internal e1, Internal e2 ->
      Internal_events.happened_before (stamp t e1) (stamp t e2)
  | Internal e, Message m -> (
      match (stamp t e).Internal_events.succ with
      | Some s -> Vector.leq s (vector t m)
      | None -> false)
  | Message m, Internal f ->
      Vector.leq (vector t m) (stamp t f).Internal_events.prev

let concurrent t a b =
  a <> b && (not (happened_before t a b)) && not (happened_before t b a)
