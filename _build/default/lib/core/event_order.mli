(** Happened-before between arbitrary events — messages and internal
    events uniformly (the full Sec. 5 picture).

    A synchronous message acts as a single synchronization event shared by
    its two participants (its send and receive are mutually ordered with
    everything through the acknowledgement), so the event universe is
    {e message events} (one per message) plus {e internal events}. This
    module decides happened-before between any two of them from the
    message timestamps and the internal stamps alone:

    - message × message: [v(m1) < v(m2)] (Theorem 4);
    - internal × internal: the Theorem 9 test;
    - internal [e] × message [m]: [succ(e) ≤ v(m)];
    - message [m] × internal [f]: [v(m) ≤ prev(f)].

    Validated against the merged-node event DAG oracle over the whole
    event universe. *)

type event =
  | Message of int  (** Message id. *)
  | Internal of int  (** Internal-event id. *)

type t

val of_trace :
  Synts_graph.Decomposition.t -> Synts_sync.Trace.t -> t
(** Precompute message timestamps (online algorithm) and internal
    stamps. *)

val of_stamps :
  message_vectors:Synts_clock.Vector.t array ->
  internal_stamps:Internal_events.stamp array ->
  t
(** From precomputed data (e.g. offline vectors). *)

val happened_before : t -> event -> event -> bool
val concurrent : t -> event -> event -> bool
