module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector

type stamp = {
  proc : int;
  prev : Vector.t;
  succ : Vector.t option;
  counter : int;
}

let of_trace_with message_vectors trace =
  let dim =
    if Array.length message_vectors > 0 then
      Vector.size message_vectors.(0)
    else 1
  in
  let zero = Vector.zero dim in
  let out =
    Array.make (Trace.internal_count trace)
      { proc = 0; prev = zero; succ = None; counter = 0 }
  in
  (* Walk each process history once: [prev] and [counter] are known at the
     event; [succ] is patched when the next message occurs. *)
  for p = 0 to Trace.n trace - 1 do
    let prev = ref zero and counter = ref 0 and pending = ref [] in
    List.iter
      (fun occ ->
        match occ with
        | Trace.Msg m ->
            let v = message_vectors.(m.Trace.id) in
            List.iter
              (fun id -> out.(id) <- { (out.(id)) with succ = Some v })
              (List.rev !pending);
            pending := [];
            prev := v;
            counter := 0
        | Trace.Int e ->
            out.(e.Trace.id) <-
              { proc = p; prev = !prev; succ = None; counter = !counter };
            incr counter;
            pending := e.Trace.id :: !pending)
      (Trace.process_history trace p)
  done;
  out

let of_trace decomposition trace =
  of_trace_with (Online.timestamp_trace decomposition trace) trace

let happened_before e f =
  (match e.succ with Some se -> Vector.leq se f.prev | None -> false)
  || (e.proc = f.proc
     && Vector.equal e.prev f.prev
     && (match (e.succ, f.succ) with
        | Some a, Some b -> Vector.equal a b
        | None, None -> true
        | Some _, None | None, Some _ -> false)
     && e.counter < f.counter)

let concurrent e f =
  (not (happened_before e f)) && not (happened_before f e) && e <> f
