module Adaptive = Synts_graph.Adaptive
module Vector = Synts_clock.Vector

type t = {
  adaptive : Adaptive.t;
  locals : Vector.t array;  (* per process, sized to the current dimension *)
}

let create n =
  if n < 1 then invalid_arg "Adaptive_stamper.create: need n >= 1";
  { adaptive = Adaptive.create n; locals = Array.make n [||] }

let pad v dim =
  let cur = Vector.size v in
  if cur >= dim then v
  else begin
    let w = Vector.zero dim in
    Array.blit v 0 w 0 cur;
    w
  end

let stamp t ~src ~dst =
  let g =
    match Adaptive.add_edge t.adaptive src dst with
    | `Known g | `Extended g | `Opened g -> g
  in
  let dim = Adaptive.size t.adaptive in
  let v = pad t.locals.(src) dim in
  Vector.max_into ~dst:v (pad t.locals.(dst) dim);
  Vector.incr v g;
  t.locals.(src) <- Vector.copy v;
  t.locals.(dst) <- v;
  Vector.copy v

let dimension t = Adaptive.size t.adaptive
let decomposition t = Adaptive.snapshot t.adaptive

let compare_padded u v =
  let dim = max (Vector.size u) (Vector.size v) in
  Vector.compare_order (pad u dim) (pad v dim)

let precedes u v = compare_padded u v = `Lt
let concurrent u v = compare_padded u v = `Concurrent
