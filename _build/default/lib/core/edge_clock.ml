module Decomposition = Synts_graph.Decomposition
module Vector = Synts_clock.Vector

type t = { pid : int; v : Vector.t; decomposition : Decomposition.t }

let create decomposition ~pid =
  if pid < 0 || pid >= Decomposition.graph_vertices decomposition then
    invalid_arg "Edge_clock.create: pid out of range";
  { pid; v = Vector.zero (Decomposition.size decomposition); decomposition }

let pid t = t.pid
let vector t = Vector.copy t.v
let dimension t = Vector.size t.v

let group t peer =
  match Decomposition.group_of_edge t.decomposition t.pid peer with
  | g -> g
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf
           "Edge_clock: channel (%d,%d) is not in the edge decomposition"
           t.pid peer)

let on_send t ~dst =
  ignore (group t dst);
  Vector.copy t.v

let merge_and_increment t peer incoming =
  Vector.max_into ~dst:t.v incoming;
  Vector.incr t.v (group t peer);
  Vector.copy t.v

let receive t ~src incoming =
  let ack = Vector.copy t.v in
  let timestamp = merge_and_increment t src incoming in
  (`Ack ack, timestamp)

let on_ack t ~dst ack = merge_and_increment t dst ack
