lib/core/event_stream.ml: Array Internal_events List Synts_clock
