lib/core/adaptive_stamper.ml: Array Synts_clock Synts_graph
