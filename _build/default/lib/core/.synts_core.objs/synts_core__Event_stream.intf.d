lib/core/event_stream.mli: Internal_events Synts_clock
