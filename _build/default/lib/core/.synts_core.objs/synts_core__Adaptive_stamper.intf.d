lib/core/adaptive_stamper.mli: Synts_clock Synts_graph
