lib/core/online.mli: Synts_clock Synts_graph Synts_sync
