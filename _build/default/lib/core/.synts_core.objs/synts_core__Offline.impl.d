lib/core/offline.ml: Array Synts_clock Synts_poset Synts_sync
