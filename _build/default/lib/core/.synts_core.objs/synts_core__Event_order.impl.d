lib/core/event_order.ml: Array Internal_events Online Synts_clock
