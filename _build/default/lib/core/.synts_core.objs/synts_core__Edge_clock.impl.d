lib/core/edge_clock.ml: Printf Synts_clock Synts_graph
