lib/core/offline.mli: Synts_clock Synts_poset Synts_sync
