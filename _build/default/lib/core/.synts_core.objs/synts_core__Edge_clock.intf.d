lib/core/edge_clock.mli: Synts_clock Synts_graph
