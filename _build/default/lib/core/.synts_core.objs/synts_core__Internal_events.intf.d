lib/core/internal_events.mli: Synts_clock Synts_graph Synts_sync
