lib/core/online.ml: Array Edge_clock Printf Synts_clock Synts_graph Synts_sync
