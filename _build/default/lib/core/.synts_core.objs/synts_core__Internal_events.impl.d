lib/core/internal_events.ml: Array List Online Synts_clock Synts_sync
