lib/core/event_order.mli: Internal_events Synts_clock Synts_graph Synts_sync
