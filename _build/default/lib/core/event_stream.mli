(** Streaming assignment of internal-event stamps (online Sec. 5).

    The batch {!Internal_events.of_trace} needs the whole trace; a running
    monitor does not have it. This module stamps internal events {e as the
    computation unfolds}: an internal event's [prev] and [counter] are
    known immediately, but its stamp is only complete once the process's
    {e next} message fixes [succ] — the inherent latency the paper notes
    ("an internal event can be assigned a timestamp only after the process
    knows the timestamp of the message after e"). Events still pending at
    shutdown are flushed with [succ = +∞].

    Tickets number internal events per {!t} in announcement order, so when
    a trace is replayed in order they coincide with the trace's internal
    ids. *)

type t

type ticket = int

val create : dimension:int -> n:int -> t
(** [n] processes, vectors of [dimension] components (the decomposition
    size), no events yet. *)

val record_internal : t -> proc:int -> ticket
(** Announce an internal event on [proc]; its stamp is deferred. *)

val record_message :
  t -> proc:int -> Synts_clock.Vector.t ->
  (ticket * Internal_events.stamp) list
(** Announce that [proc] just participated in a message with the given
    timestamp. Returns the stamps this resolves — every pending internal
    event of [proc], in occurrence order. Call once per participant (twice
    per message). Vectors at least [dimension] wide are accepted (they
    may grow when fed by an adaptive stamper); each resolved stamp's
    [prev] is zero-padded to its [succ]'s width. *)

val finish : t -> (ticket * Internal_events.stamp) list
(** Flush every still-pending event with [succ = +∞], in ticket order.
    The stream must not be used afterwards. *)

val pending : t -> int
(** Number of announced-but-unresolved events. *)
