(** The offline algorithm (paper Sec. 4, Figure 9).

    Given a completed computation: (1) the message poset has width
    [w ≤ ⌊N/2⌋] because every message occupies two of the N processes
    (Theorem 8); (2) a Dilworth chain partition yields a realizer
    [{L1, …, Lw}] with [∩ Li = (M, ↦)]; (3) message [m] is timestamped
    with [V_m], [V_m[i]] = number of elements below [m] in [Li] (its
    rank). Then [m1 ↦ m2 ⟺ V_m1 < V_m2]. *)

val width_bound : n:int -> int
(** [⌊N/2⌋]. *)

val timestamp_poset : Synts_poset.Poset.t -> Synts_clock.Vector.t array
(** Rank vectors from the Dilworth realizer of an arbitrary poset, shifted
    to 1-based so every timestamp is strictly above the zero vector (the
    bottom element used by the internal-event stamps of Sec. 5). *)

val timestamp_trace : Synts_sync.Trace.t -> Synts_clock.Vector.t array
(** Timestamps for all messages of a synchronous trace; vector size is
    [max 1 (width of the message poset)] ≤ ⌊N/2⌋. *)

val dimension_used : Synts_sync.Trace.t -> int
(** The realizer size the offline algorithm would use on this trace. *)

val precedes : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
val concurrent : Synts_clock.Vector.t -> Synts_clock.Vector.t -> bool
