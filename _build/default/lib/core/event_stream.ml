module Vector = Synts_clock.Vector

type ticket = int

type proc_state = {
  mutable prev : Vector.t;
  mutable counter : int;
  mutable pending : (ticket * Vector.t * int) list;
      (* (ticket, prev-at-announce, counter-at-announce), newest first *)
}

type t = {
  dimension : int;
  procs : proc_state array;
  mutable next_ticket : int;
  mutable pending_total : int;
}

let create ~dimension ~n =
  if n < 1 then invalid_arg "Event_stream.create: need n >= 1";
  if dimension < 1 then invalid_arg "Event_stream.create: need dimension >= 1";
  {
    dimension;
    procs =
      Array.init n (fun _ ->
          { prev = Vector.zero dimension; counter = 0; pending = [] });
    next_ticket = 0;
    pending_total = 0;
  }

let proc_state t proc =
  if proc < 0 || proc >= Array.length t.procs then
    invalid_arg "Event_stream: process out of range";
  t.procs.(proc)

let record_internal t ~proc =
  let st = proc_state t proc in
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  st.pending <- (ticket, st.prev, st.counter) :: st.pending;
  st.counter <- st.counter + 1;
  t.pending_total <- t.pending_total + 1;
  ticket

let pad v dim =
  if Vector.size v >= dim then v
  else begin
    let w = Vector.zero dim in
    Array.blit v 0 w 0 (Vector.size v);
    w
  end

let stamp_of proc ~succ (ticket, prev, counter) =
  (* With an adaptive stamper vectors grow over time; older [prev]
     vectors are zero-padded to the successor's width so each stamp is
     internally consistent. *)
  let prev =
    match succ with Some s -> pad prev (Vector.size s) | None -> prev
  in
  (ticket, { Internal_events.proc; prev; succ; counter })

let record_message t ~proc timestamp =
  let st = proc_state t proc in
  if Vector.size timestamp < t.dimension then
    invalid_arg "Event_stream.record_message: vector narrower than created dimension";
  let resolved =
    List.rev_map (stamp_of proc ~succ:(Some timestamp)) st.pending
  in
  t.pending_total <- t.pending_total - List.length st.pending;
  st.pending <- [];
  st.prev <- timestamp;
  st.counter <- 0;
  resolved

let finish t =
  let out = ref [] in
  Array.iteri
    (fun proc st ->
      List.iter
        (fun entry -> out := stamp_of proc ~succ:None entry :: !out)
        st.pending;
      st.pending <- [])
    t.procs;
  t.pending_total <- 0;
  List.sort compare !out

let pending t = t.pending_total
