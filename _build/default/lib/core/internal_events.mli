(** Timestamping internal events (paper Sec. 5, Theorem 9).

    Each internal event [e] receives the triple
    [(prev e, succ e, counter e)]: the timestamp of the last message on
    [e]'s process before [e] (the zero vector when none), the timestamp of
    the first message after [e] ([None], i.e. +∞, when none), and the
    count of internal events since the last external event. Then for
    events of {e different} processes

    [e → f ⟺ succ e ≤ prev f]

    and for events of the {e same} process, [e → f] additionally when both
    surrounding messages coincide and [counter e < counter f]. (The
    paper's counter comparison implicitly concerns same-process events: two
    events of different processes can share both surrounding messages —
    when those two messages connect the same pair of processes — yet be
    concurrent, so we make the same-process condition explicit.) *)

type stamp = {
  proc : int;
  prev : Synts_clock.Vector.t;  (** Zero vector when no message precedes. *)
  succ : Synts_clock.Vector.t option;  (** [None] means +∞. *)
  counter : int;
}

val of_trace :
  Synts_graph.Decomposition.t -> Synts_sync.Trace.t -> stamp array
(** One stamp per internal-event id, using the online algorithm's message
    timestamps. *)

val of_trace_with :
  Synts_clock.Vector.t array -> Synts_sync.Trace.t -> stamp array
(** Same, but from precomputed message timestamps (e.g. the offline
    algorithm's); all vectors must share one dimension. *)

val happened_before : stamp -> stamp -> bool
(** The Theorem 9 test. *)

val concurrent : stamp -> stamp -> bool
