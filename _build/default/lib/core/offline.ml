module Poset = Synts_poset.Poset
module Realizer = Synts_poset.Realizer
module Dilworth = Synts_poset.Dilworth
module Message_poset = Synts_sync.Message_poset
module Vector = Synts_clock.Vector

let width_bound ~n = n / 2

let timestamp_poset p =
  let vecs = Realizer.vectors (Realizer.dilworth p) in
  (* Shift ranks to 1-based so the all-zero vector stays strictly below
     every timestamp — the Section 5 internal-event stamps use zero as the
     "no preceding message" bottom element. *)
  Array.map (Array.map succ) vecs

let timestamp_trace trace = timestamp_poset (Message_poset.of_trace trace)

let dimension_used trace =
  max 1 (Dilworth.width (Message_poset.of_trace trace))

let precedes = Vector.lt
let concurrent = Vector.concurrent
