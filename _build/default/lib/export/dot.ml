module Graph = Synts_graph.Graph
module Decomposition = Synts_graph.Decomposition
module Poset = Synts_poset.Poset
module Trace = Synts_sync.Trace
module Message_poset = Synts_sync.Message_poset

let vertex_name labels v =
  match List.assoc_opt v labels with
  | Some s -> s
  | None -> Printf.sprintf "P%d" (v + 1)

(* A qualitative palette that stays readable on white. *)
let palette =
  [|
    "#1b9e77"; "#d95f02"; "#7570b3"; "#e7298a"; "#66a61e"; "#e6ab02";
    "#a6761d"; "#666666"; "#1f78b4"; "#b2df8a"; "#fb9a99"; "#cab2d6";
  |]

let color g = palette.(g mod Array.length palette)

let topology ?(labels = []) g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph topology {\n  node [shape=circle];\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\"];\n" v (vertex_name labels v)))
    (Graph.vertices g);
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let decomposition ?(labels = []) g d =
  (* Validate coverage up front so the output is never misleading. *)
  Graph.iter_edges
    (fun u v ->
      match Decomposition.group_of_edge d u v with
      | _ -> ()
      | exception Not_found ->
          invalid_arg "Dot.decomposition: decomposition does not cover the graph")
    g;
  let centers =
    List.filter_map
      (function
        | Decomposition.Star { center; _ } -> Some center
        | Decomposition.Triangle _ -> None)
      (Decomposition.groups d)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph decomposition {\n  node [shape=circle];\n";
  List.iter
    (fun v ->
      let peripheries = if List.mem v centers then 2 else 1 in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\", peripheries=%d];\n" v
           (vertex_name labels v) peripheries))
    (Graph.vertices g);
  Graph.iter_edges
    (fun u v ->
      let grp = Decomposition.group_of_edge d u v in
      Buffer.add_string buf
        (Printf.sprintf
           "  %d -- %d [color=\"%s\", label=\"E%d\", fontcolor=\"%s\"];\n" u v
           (color grp) (grp + 1) (color grp)))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let poset ?(names = fun i -> Printf.sprintf "m%d" (i + 1)) p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph poset {\n  rankdir=BT;\n  node [shape=box];\n";
  for i = 0 to Poset.size p - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" i (names i))
  done;
  List.iter
    (fun (i, j) -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" i j))
    (Poset.covers p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let message_poset trace =
  let p = Message_poset.of_trace trace in
  let names i =
    let m = Trace.message trace i in
    Printf.sprintf "m%d: P%d->P%d" (i + 1) (m.Trace.src + 1) (m.Trace.dst + 1)
  in
  poset ~names p
