module Trace = Synts_sync.Trace
module Vector = Synts_clock.Vector
module Decomposition = Synts_graph.Decomposition

let palette =
  [|
    "#1b9e77"; "#d95f02"; "#7570b3"; "#e7298a"; "#66a61e"; "#e6ab02";
    "#a6761d"; "#666666"; "#1f78b4"; "#b2df8a"; "#fb9a99"; "#cab2d6";
  |]

let column_width = 46
let row_height = 44
let left_margin = 64
let top_margin = 40

let x_of col = left_margin + (col * column_width)
let y_of row = top_margin + (row * row_height)

let diagram ?timestamps ?decomposition trace =
  (match timestamps with
  | Some ts when Array.length ts <> Trace.message_count trace ->
      invalid_arg "Svg.diagram: timestamp count mismatch"
  | _ -> ());
  let n = Trace.n trace in
  let steps = Trace.steps trace in
  let columns = List.length steps in
  let width = left_margin + ((columns + 1) * column_width) in
  let height = top_margin + (n * row_height) + 20 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"12\">\n"
       width height);
  Buffer.add_string buf
    "  <defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"9\" \
     refY=\"5\" markerWidth=\"7\" markerHeight=\"7\" orient=\"auto\"><path \
     d=\"M 0 0 L 10 5 L 0 10 z\"/></marker></defs>\n";
  (* Process lines with labels. *)
  for p = 0 to n - 1 do
    let y = y_of p in
    Buffer.add_string buf
      (Printf.sprintf
         "  <text x=\"8\" y=\"%d\" dominant-baseline=\"middle\">P%d</text>\n"
         y (p + 1));
    Buffer.add_string buf
      (Printf.sprintf
         "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" \
          stroke=\"#999\"/>\n"
         (x_of 0 - 10) y
         (x_of columns)
         y)
  done;
  (* Actions. *)
  let mid = ref 0 in
  List.iteri
    (fun col step ->
      let x = x_of col in
      match step with
      | Trace.Local p ->
          Buffer.add_string buf
            (Printf.sprintf
               "  <circle cx=\"%d\" cy=\"%d\" r=\"4\" fill=\"#444\"/>\n" x
               (y_of p))
      | Trace.Send (src, dst) ->
          let id = !mid in
          incr mid;
          let color =
            match decomposition with
            | None -> "#1f78b4"
            | Some d -> (
                match Decomposition.group_of_edge d src dst with
                | g -> palette.(g mod Array.length palette)
                | exception Not_found ->
                    invalid_arg
                      "Svg.diagram: decomposition does not cover a used channel")
          in
          Buffer.add_string buf
            (Printf.sprintf
               "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" \
                stroke=\"%s\" stroke-width=\"2\" \
                marker-end=\"url(#arrow)\"/>\n"
               x (y_of src) x (y_of dst) color);
          let label =
            match timestamps with
            | Some ts -> Vector.to_string ts.(id)
            | None -> Printf.sprintf "m%d" (id + 1)
          in
          let label_y = min (y_of src) (y_of dst) - 8 in
          Buffer.add_string buf
            (Printf.sprintf
               "  <text x=\"%d\" y=\"%d\" text-anchor=\"middle\" \
                fill=\"%s\">%s</text>\n"
               x label_y color label))
    steps;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?timestamps ?decomposition path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (diagram ?timestamps ?decomposition trace))
