(** Graphviz (DOT) export.

    Visual artifacts for papers and debugging: topologies with edges
    colored by decomposition group (the visual version of the paper's
    Figures 3, 4 and 8), and Hasse diagrams of message posets (the partial
    orders of Figures 1 and 6). Output is plain DOT text; render with
    `dot -Tsvg`. *)

val topology : ?labels:(int * string) list -> Synts_graph.Graph.t -> string
(** Undirected topology, one line per edge. *)

val decomposition :
  ?labels:(int * string) list ->
  Synts_graph.Graph.t ->
  Synts_graph.Decomposition.t ->
  string
(** Topology with each edge colored and labelled by its group [E1..Ed];
    star centers get a doubled border. Raises [Invalid_argument] if the
    decomposition does not cover the graph. *)

val poset :
  ?names:(int -> string) -> Synts_poset.Poset.t -> string
(** Hasse diagram (transitive reduction) of a poset, edges pointing
    upward. [names] defaults to [m1, m2, …]. *)

val message_poset : Synts_sync.Trace.t -> string
(** Hasse diagram of a trace's message poset, nodes labelled
    [m<i>: Pa->Pb]. *)
