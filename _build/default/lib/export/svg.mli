(** SVG time diagrams — the publication-quality version of
    {!Synts_sync.Diagram}.

    Horizontal process lines, vertical message arrows (the defining visual
    of synchronous computations), dots for internal events, optional
    timestamp labels, edges colored by decomposition group when one is
    supplied. Output is a standalone [<svg>] document. *)

val diagram :
  ?timestamps:Synts_clock.Vector.t array ->
  ?decomposition:Synts_graph.Decomposition.t ->
  Synts_sync.Trace.t ->
  string
(** Raises [Invalid_argument] when [timestamps] does not match the
    message count or the decomposition misses a used channel. *)

val save :
  ?timestamps:Synts_clock.Vector.t array ->
  ?decomposition:Synts_graph.Decomposition.t ->
  string ->
  Synts_sync.Trace.t ->
  unit
(** [save path trace] writes the SVG to a file. *)
