lib/export/dot.mli: Synts_graph Synts_poset Synts_sync
