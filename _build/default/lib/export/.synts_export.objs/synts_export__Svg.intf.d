lib/export/svg.mli: Synts_clock Synts_graph Synts_sync
