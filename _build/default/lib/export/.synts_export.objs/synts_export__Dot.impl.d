lib/export/dot.ml: Array Buffer List Printf Synts_graph Synts_poset Synts_sync
