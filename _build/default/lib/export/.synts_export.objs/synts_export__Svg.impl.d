lib/export/svg.ml: Array Buffer Fun List Printf Synts_clock Synts_graph Synts_sync
