module Vector = Synts_clock.Vector

type t = {
  mutable elements : (int * Vector.t) list;  (* newest last *)
  mutable observed : int;
}

let create () = { elements = []; observed = 0 }

(* Vectors from an adaptive stamper grow over time; missing trailing
   components are zero, so comparisons zero-pad the shorter vector. *)
let padded_pair u v =
  let dim = max (Vector.size u) (Vector.size v) in
  let pad w =
    if Vector.size w = dim then w
    else begin
      let x = Vector.zero dim in
      Array.blit w 0 x 0 (Vector.size w);
      x
    end
  in
  (pad u, pad v)

let plt u v =
  let u, v = padded_pair u v in
  Vector.lt u v

let pleq u v =
  let u, v = padded_pair u v in
  Vector.leq u v

let insert t ~id v =
  if List.mem_assoc id t.elements then invalid_arg "Frontier.insert: duplicate id";
  t.observed <- t.observed + 1;
  let dominated = List.exists (fun (_, w) -> plt v w) t.elements in
  if dominated then `Dominated
  else begin
    t.elements <-
      List.filter (fun (_, w) -> not (pleq w v)) t.elements @ [ (id, v) ];
    `Maximal
  end

let frontier t = t.elements
let size t = List.length t.elements
let observed t = t.observed
let dominated_by t v = List.exists (fun (_, w) -> plt v w) t.elements
let covers t v = List.exists (fun (_, w) -> pleq v w) t.elements
