(** Online causal-order statistics.

    Streaming counters over timestamped messages: ordered vs. concurrent
    pair counts (the concurrency ratio is a standard parallelism metric),
    per-group activity, and longest-chain tracking — all from vector
    comparisons, no trace reconstruction. Exact but O(history) per
    insertion; use {!create ~window} to bound memory with a sliding window
    (statistics then refer to pairs within the window). *)

type t

val create : ?window:int -> unit -> t
(** [window] bounds how many recent messages are retained (default:
    unbounded). *)

val observe : t -> Synts_clock.Vector.t -> unit
(** Feed the next message's timestamp (in any linearization order
    consistent with observation). *)

val messages : t -> int
(** Total observed. *)

val ordered_pairs : t -> int
val concurrent_pairs : t -> int

val concurrency_ratio : t -> float
(** concurrent / (ordered + concurrent) among compared pairs; 0 when no
    pairs. *)

val longest_chain : t -> int
(** Length of the longest causal chain among retained messages (longest
    path in the comparison DAG, computed incrementally). *)
