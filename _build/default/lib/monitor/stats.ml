module Vector = Synts_clock.Vector

type entry = { vector : Vector.t; chain : int }

type t = {
  window : int option;
  mutable retained : entry list;  (* newest first *)
  mutable messages : int;
  mutable ordered : int;
  mutable concurrent : int;
  mutable longest : int;
}

let create ?window () =
  (match window with
  | Some w when w < 1 -> invalid_arg "Stats.create: window must be >= 1"
  | _ -> ());
  {
    window;
    retained = [];
    messages = 0;
    ordered = 0;
    concurrent = 0;
    longest = 0;
  }

let truncate t =
  match t.window with
  | None -> ()
  | Some w ->
      if List.length t.retained > w then
        t.retained <- List.filteri (fun i _ -> i < w) t.retained

(* Zero-pad for vectors that grew under an adaptive stamper. *)
let padded_compare u v =
  let dim = max (Vector.size u) (Vector.size v) in
  let pad w =
    if Vector.size w = dim then w
    else begin
      let x = Vector.zero dim in
      Array.blit w 0 x 0 (Vector.size w);
      x
    end
  in
  Vector.compare_order (pad u) (pad v)

let observe t v =
  t.messages <- t.messages + 1;
  let best_pred = ref 0 in
  List.iter
    (fun { vector; chain } ->
      match padded_compare vector v with
      | `Lt ->
          t.ordered <- t.ordered + 1;
          if chain > !best_pred then best_pred := chain
      | `Gt ->
          (* Possible when observations arrive out of linearization
             order; still an ordered pair. *)
          t.ordered <- t.ordered + 1
      | `Eq -> ()
      | `Concurrent -> t.concurrent <- t.concurrent + 1)
    t.retained;
  let chain = !best_pred + 1 in
  if chain > t.longest then t.longest <- chain;
  t.retained <- { vector = v; chain } :: t.retained;
  truncate t

let messages t = t.messages
let ordered_pairs t = t.ordered
let concurrent_pairs t = t.concurrent

let concurrency_ratio t =
  let total = t.ordered + t.concurrent in
  if total = 0 then 0.0 else float_of_int t.concurrent /. float_of_int total

let longest_chain t = t.longest
