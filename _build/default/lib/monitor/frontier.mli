(** The causal frontier of a monitored computation.

    A monitoring station receives timestamped messages (possibly out of
    order across sources) and maintains the set of {e maximal} messages
    seen so far — the computation's frontier. With exact timestamps the
    frontier is computed with vector comparisons only; it is what a
    debugger shows as "the current global state's latest events" and what
    garbage-collection of observation logs keys on.

    Every stored element is identified by a caller-chosen id. *)

type t

val create : unit -> t

val insert : t -> id:int -> Synts_clock.Vector.t -> [ `Maximal | `Dominated ]
(** Add an observation. [`Dominated] means some already-seen message
    causally follows it (it joins the history but not the frontier);
    [`Maximal] means it enters the frontier, evicting any elements it
    dominates. Ids must be unique; vectors must share one dimension. *)

val frontier : t -> (int * Synts_clock.Vector.t) list
(** Current maximal elements, in insertion order. Pairwise concurrent by
    construction. *)

val size : t -> int
(** Frontier size (≤ the poset's width). *)

val observed : t -> int
(** Total insertions. *)

val dominated_by : t -> Synts_clock.Vector.t -> bool
(** Would a message with this vector be dominated by the frontier? *)

val covers : t -> Synts_clock.Vector.t -> bool
(** Is this vector ≤ some frontier element (i.e. already in the observed
    causal past)? *)
