lib/monitor/stats.mli: Synts_clock
