lib/monitor/stats.ml: Array List Synts_clock
