lib/monitor/frontier.mli: Synts_clock
