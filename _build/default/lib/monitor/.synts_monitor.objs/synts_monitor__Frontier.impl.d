lib/monitor/frontier.ml: Array List Synts_clock
