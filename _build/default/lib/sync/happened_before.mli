(** Ground-truth happened-before over the events of a synchronous
    computation (paper Sec. 5).

    With synchronous messages every program message is acknowledged, so the
    causal past of anything after a message's send event includes everything
    before the matching receive event and vice versa. For ordering purposes
    the send/receive pair therefore acts as a single synchronization point:
    we build a DAG whose nodes are messages (one merged node per message)
    and internal events, with an edge between consecutive occurrences of
    each process, and take its closure. This is an oracle — deliberately
    independent of the paper's timestamping algorithms — used to validate
    Theorem 9.

    Node numbering: message [m] is node [m]; internal event [i] is node
    [message_count + i]. *)

val node_of_message : Trace.t -> int -> int
val node_of_internal : Trace.t -> int -> int

val of_trace : Trace.t -> Synts_poset.Poset.t
(** The happened-before poset over all nodes. *)

val internal_hb : Trace.t -> Synts_poset.Poset.t -> int -> int -> bool
(** [internal_hb t hb i j]: internal event [i] happened before internal
    event [j] ([hb] must come from {!of_trace} on the same trace). *)
