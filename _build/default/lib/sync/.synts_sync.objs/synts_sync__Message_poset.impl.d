lib/sync/message_poset.ml: Array Fun List Synts_poset Trace
