lib/sync/synchronous.ml: Array Async_trace Int List Set Trace
