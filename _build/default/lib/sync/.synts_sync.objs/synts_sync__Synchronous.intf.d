lib/sync/synchronous.mli: Async_trace Trace
