lib/sync/trace_io.ml: Buffer Fun In_channel List Printf String Trace
