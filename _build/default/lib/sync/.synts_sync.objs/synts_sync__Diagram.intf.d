lib/sync/diagram.mli: Trace
