lib/sync/trace.mli: Format Synts_graph
