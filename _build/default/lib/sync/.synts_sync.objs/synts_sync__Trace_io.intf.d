lib/sync/trace_io.mli: Trace
