lib/sync/diagram.ml: Array Buffer Fun List Printf String Trace
