lib/sync/happened_before.ml: Synts_poset Trace
