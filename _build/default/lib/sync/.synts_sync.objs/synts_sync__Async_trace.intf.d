lib/sync/async_trace.mli: Trace
