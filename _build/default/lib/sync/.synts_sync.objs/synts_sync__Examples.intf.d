lib/sync/examples.mli: Synts_graph Trace
