lib/sync/trace.ml: Array Format List Printf Synts_graph
