lib/sync/message_poset.mli: Synts_poset Trace
