lib/sync/happened_before.mli: Synts_poset Trace
