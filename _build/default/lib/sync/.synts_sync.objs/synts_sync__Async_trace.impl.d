lib/sync/async_trace.ml: Array Fun List Printf Trace
