lib/sync/examples.ml: Synts_graph Trace
