module Poset = Synts_poset.Poset

let direct_pairs t =
  let pairs = ref [] in
  for p = 0 to Trace.n t - 1 do
    let msgs =
      List.filter_map
        (function Trace.Msg m -> Some m.Trace.id | Trace.Int _ -> None)
        (Trace.process_history t p)
    in
    let rec chain = function
      | a :: (b :: _ as rest) ->
          pairs := (a, b) :: !pairs;
          chain rest
      | [] | [ _ ] -> ()
    in
    chain msgs
  done;
  List.rev !pairs

let directly_precedes t m1 m2 =
  let a = Trace.message t m1 and b = Trace.message t m2 in
  a.Trace.pos < b.Trace.pos
  && (Trace.involves b a.Trace.src || Trace.involves b a.Trace.dst)

let of_trace t = Poset.of_relation (Trace.message_count t) (direct_pairs t)

let chain_between t m1 m2 =
  let count = Trace.message_count t in
  if m1 < 0 || m1 >= count || m2 < 0 || m2 >= count then
    invalid_arg "Message_poset.chain_between: id out of range";
  if m1 = m2 then Some [ m1 ]
  else begin
    (* Longest ▷-path from m1 to m2, by dynamic programming in position
       order over the full direct relation. *)
    let by_pos =
      List.sort
        (fun a b -> compare (Trace.message t a).Trace.pos (Trace.message t b).Trace.pos)
        (List.init count Fun.id)
    in
    let best = Array.make count min_int in
    let pred = Array.make count (-1) in
    best.(m1) <- 1;
    List.iter
      (fun m ->
        if best.(m) > min_int then
          List.iter
            (fun m' ->
              if directly_precedes t m m' && best.(m) + 1 > best.(m') then begin
                best.(m') <- best.(m) + 1;
                pred.(m') <- m
              end)
            by_pos)
      by_pos;
    if best.(m2) = min_int then None
    else begin
      let rec collect m acc =
        if m = m1 then m1 :: acc else collect pred.(m) (m :: acc)
      in
      Some (collect m2 [])
    end
  end

let is_total_order p =
  let n = Poset.size p in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Poset.comparable p i j) then ok := false
    done
  done;
  !ok
