type event = ASend of int | ARecv of int | ALocal

type t = {
  n : int;
  histories : event list array;
  senders : int array;
  receivers : int array;
}

let make ~n histories =
  if n < 1 then Error "need at least one process"
  else if Array.length histories <> n then Error "history count <> n"
  else begin
    let ids =
      Array.to_list histories
      |> List.concat_map
           (List.filter_map (function
             | ASend m | ARecv m -> Some m
             | ALocal -> None))
      |> List.sort_uniq compare
    in
    let k = List.length ids in
    if ids <> List.init k Fun.id then
      Error "message ids must be exactly 0 .. k-1"
    else begin
      let senders = Array.make k (-1) and receivers = Array.make k (-1) in
      let error = ref None in
      Array.iteri
        (fun p evs ->
          List.iter
            (fun ev ->
              match ev with
              | ALocal -> ()
              | ASend m ->
                  if senders.(m) >= 0 then
                    error := Some (Printf.sprintf "message %d sent twice" m)
                  else senders.(m) <- p
              | ARecv m ->
                  if receivers.(m) >= 0 then
                    error := Some (Printf.sprintf "message %d received twice" m)
                  else receivers.(m) <- p)
            evs)
        histories;
      match !error with
      | Some e -> Error e
      | None ->
          let missing =
            List.find_opt
              (fun m -> senders.(m) < 0 || receivers.(m) < 0)
              (List.init k Fun.id)
          in
          (match missing with
          | Some m -> Error (Printf.sprintf "message %d lacks send or receive" m)
          | None ->
              if
                List.exists
                  (fun m -> senders.(m) = receivers.(m))
                  (List.init k Fun.id)
              then Error "a message is sent and received by the same process"
              else
                Ok { n; histories = Array.map Fun.id histories; senders; receivers })
    end
  end

let make_exn ~n histories =
  match make ~n histories with
  | Ok t -> t
  | Error msg -> invalid_arg ("Async_trace.make: " ^ msg)

let n t = t.n
let message_count t = Array.length t.senders

let history t p =
  if p < 0 || p >= t.n then invalid_arg "Async_trace.history";
  t.histories.(p)

let sender t m =
  if m < 0 || m >= message_count t then invalid_arg "Async_trace.sender";
  t.senders.(m)

let receiver t m =
  if m < 0 || m >= message_count t then invalid_arg "Async_trace.receiver";
  t.receivers.(m)

let of_trace trace =
  let n = Trace.n trace in
  let histories = Array.make n [] in
  for p = 0 to n - 1 do
    histories.(p) <-
      List.map
        (function
          | Trace.Msg m ->
              if m.Trace.src = p then ASend m.Trace.id else ARecv m.Trace.id
          | Trace.Int _ -> ALocal)
        (Trace.process_history trace p)
  done;
  make_exn ~n histories

let crown () =
  make_exn ~n:2 [| [ ASend 0; ARecv 1 ]; [ ASend 1; ARecv 0 ] |]
