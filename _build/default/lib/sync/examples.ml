module Decomposition = Synts_graph.Decomposition
module Topology = Synts_graph.Topology

(* Processes are 0-based internally: paper's P1..P4 are 0..3. *)
let fig1 () =
  Trace.of_steps_exn ~n:4
    [
      Send (0, 1) (* m1 : P1 -> P2 *);
      Send (3, 2) (* m2 : P4 -> P3 *);
      Send (1, 2) (* m3 : P2 -> P3 *);
      Send (2, 3) (* m4 : P3 -> P4 *);
      Send (2, 3) (* m5 : P3 -> P4 *);
      Send (1, 2) (* m6 : P2 -> P3 *);
    ]

let fig6 () =
  Trace.of_steps_exn ~n:5
    [
      Send (0, 1) (* P1 -> P2, edge in E1 *);
      Send (2, 3) (* P3 -> P4, edge in E3 *);
      Send (1, 2) (* P2 -> P3, edge in E2: gets (1,1,1) *);
      Send (3, 4) (* P4 -> P5, edge in E3 *);
      Send (0, 4) (* P1 -> P5, edge in E1 *);
      Send (1, 4) (* P2 -> P5, edge in E2 *);
    ]

let fig6_decomposition () =
  Decomposition.make_exn
    (Topology.fig6_topology ())
    [
      Star { center = 0; leaves = [ 1; 2; 3; 4 ] };
      Star { center = 1; leaves = [ 2; 3; 4 ] };
      Triangle (2, 3, 4);
    ]

let fig6_expected =
  [
    (0, [| 1; 0; 0 |]);
    (1, [| 0; 0; 1 |]);
    (2, [| 1; 1; 1 |]);
    (3, [| 0; 0; 2 |]);
    (4, [| 2; 0; 2 |]);
    (5, [| 2; 2; 2 |]);
  ]
