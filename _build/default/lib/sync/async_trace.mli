(** Asynchronous computations with explicit send/receive events.

    Used to state and check {e synchronizability}: a computation can be
    drawn with vertical message arrows (i.e. could have been produced with
    synchronous messages) iff its messages admit integer timestamps that
    increase along each process and coincide on each send/receive pair
    (Charron-Bost, Mattern & Tel) — see {!Synchronous}. *)

type event =
  | ASend of int  (** Send of the message with this id. *)
  | ARecv of int  (** Receive of the message with this id. *)
  | ALocal  (** Internal event (ignored by the synchronizability check). *)

type t

val make : n:int -> event list array -> (t, string) result
(** [make ~n histories] with [histories.(p)] process [p]'s local event
    sequence. Each message id in [0 .. k-1] must be sent exactly once and
    received exactly once, on two different processes. *)

val make_exn : n:int -> event list array -> t

val n : t -> int
val message_count : t -> int
val history : t -> int -> event list
val sender : t -> int -> int
val receiver : t -> int -> int

val of_trace : Trace.t -> t
(** A synchronous trace viewed asynchronously: each message's send is
    immediately followed by its receive in the linearization order (so the
    result is always synchronizable). *)

val crown : unit -> t
(** The classic non-synchronizable two-process computation: each process
    sends before it receives, and the two messages cross. *)
