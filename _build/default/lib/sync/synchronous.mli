(** Synchronizability: when can a computation be drawn with vertical
    arrows?

    Paper Sec. 2: a computation is synchronous iff its send and receive
    events can be timestamped with integers that (1) increase within each
    process and (2) coincide on the two events of each message. That holds
    exactly when the direct message-precedence digraph is acyclic, in which
    case any topological numbering of the messages is such a timestamping
    and yields a linearization with instantaneous messages. *)

val direct_message_pairs : Async_trace.t -> (int * int) list
(** Pairs [(m1, m2)] with [m1 ▷ m2] generated from consecutive events of
    each process (their closure is the full ▷ closure). *)

val integer_timestamps : Async_trace.t -> int array option
(** [Some ts] with [ts.(m)] the integer timestamp of message [m] when the
    computation is synchronizable, [None] otherwise. Timestamps are
    distinct (a strict topological numbering), which is sufficient for the
    two conditions above. *)

val is_synchronous : Async_trace.t -> bool

val to_trace : Async_trace.t -> Trace.t option
(** A synchronous trace with the same messages and per-process message
    orders, when synchronizable. Internal events are preserved in their
    local positions. *)

val respects : Async_trace.t -> int array -> bool
(** Check conditions (1)–(2) for an arbitrary candidate assignment: along
    each process the (per-event) timestamps strictly increase, where the
    timestamp of an event is the assignment of its message. *)
