module Poset = Synts_poset.Poset

let node_of_message t m =
  if m < 0 || m >= Trace.message_count t then
    invalid_arg "Happened_before.node_of_message";
  m

let node_of_internal t i =
  if i < 0 || i >= Trace.internal_count t then
    invalid_arg "Happened_before.node_of_internal";
  Trace.message_count t + i

let node_of_occurrence t = function
  | Trace.Msg m -> node_of_message t m.Trace.id
  | Trace.Int e -> node_of_internal t e.Trace.id

let of_trace t =
  let nodes = Trace.message_count t + Trace.internal_count t in
  let pairs = ref [] in
  for p = 0 to Trace.n t - 1 do
    let rec chain = function
      | a :: (b :: _ as rest) ->
          pairs := (node_of_occurrence t a, node_of_occurrence t b) :: !pairs;
          chain rest
      | [] | [ _ ] -> ()
    in
    chain (Trace.process_history t p)
  done;
  Poset.of_relation nodes !pairs

let internal_hb t hb i j =
  Poset.lt hb (node_of_internal t i) (node_of_internal t j)
