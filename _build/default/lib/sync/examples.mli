(** The paper's worked examples, reconstructed as concrete traces.

    The published figures are images absent from the source text, so these
    traces are rebuilt from the properties the paper states about them; the
    test suite asserts exactly those properties. *)

val fig1 : unit -> Trace.t
(** A 4-process synchronous computation with 6 messages m1..m6 (ids 0..5)
    satisfying everything Sec. 2 says about Figure 1: [m1 ∥ m2],
    [m1 ▷ m3], [m2 ↦ m6], [m3 ↦ m5], and a synchronous chain of size 4
    from m1 to m5. *)

val fig6 : unit -> Trace.t
(** A synchronous computation on the fully-connected 5-process system of
    Figure 6. Under {!fig6_decomposition} the message P2→P3 receives
    timestamp (1,1,1) from local vectors (1,0,0) at P2 and (0,0,1) at P3,
    exactly as the paper narrates. *)

val fig6_decomposition : unit -> Synts_graph.Decomposition.t
(** K5 as 2 stars + 1 triangle (Figure 3(a)): E1 = star at P1,
    E2 = star at P2, E3 = triangle (P3, P4, P5). *)

val fig6_expected : (int * int array) list
(** Expected (message id, timestamp) pairs for {!fig6} under
    {!fig6_decomposition}, computed by hand from the algorithm of
    Figure 5. *)
