(** The poset [(M, ↦)] of a synchronous computation (paper Sec. 2).

    The direct relation [▷] holds between two messages when they share a
    participant process and the first occurs before the second in that
    process's local order; [↦] ("synchronously precedes") is its transitive
    closure. Because each process's messages are totally ordered, closing
    only the consecutive per-process pairs yields the same poset, which is
    how {!of_trace} stays near-linear before the closure. *)

val direct_pairs : Trace.t -> (int * int) list
(** The per-process consecutive pairs [(m1.id, m2.id)] generating [▷]'s
    closure. *)

val directly_precedes : Trace.t -> int -> int -> bool
(** The full [m1 ▷ m2] test (shared participant, earlier position). *)

val of_trace : Trace.t -> Synts_poset.Poset.t
(** The poset [(M, ↦)] over message ids. *)

val chain_between : Trace.t -> int -> int -> int list option
(** [chain_between t m1 m2] is a synchronous chain
    [m1 ▷ … ▷ m2] (list of message ids, inclusive) when [m1 ↦ m2] or
    [m1 = m2]; [None] otherwise. The chain returned is a longest one, so
    its length witnesses the "synchronous chain of size k" notion used in
    the paper's Figure 1 discussion. *)

val is_total_order : Synts_poset.Poset.t -> bool
(** No two distinct elements are concurrent (Lemma 1's conclusion). *)
