let message_events_of_history evs =
  List.filter_map
    (function
      | Async_trace.ASend m | Async_trace.ARecv m -> Some m
      | Async_trace.ALocal -> None)
    evs

let direct_message_pairs t =
  let pairs = ref [] in
  for p = 0 to Async_trace.n t - 1 do
    let rec chain = function
      | a :: (b :: _ as rest) ->
          pairs := (a, b) :: !pairs;
          chain rest
      | [] | [ _ ] -> ()
    in
    chain (message_events_of_history (Async_trace.history t p))
  done;
  List.rev !pairs

let topological_order t =
  let k = Async_trace.message_count t in
  let adj = Array.make k [] and indeg = Array.make k 0 in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      indeg.(b) <- indeg.(b) + 1)
    (direct_message_pairs t);
  (* Deterministic Kahn: always pop the smallest available id. *)
  let module IS = Set.Make (Int) in
  let avail = ref IS.empty in
  Array.iteri (fun m d -> if d = 0 then avail := IS.add m !avail) indeg;
  let order = ref [] in
  let placed = ref 0 in
  while not (IS.is_empty !avail) do
    let m = IS.min_elt !avail in
    avail := IS.remove m !avail;
    order := m :: !order;
    incr placed;
    List.iter
      (fun b ->
        indeg.(b) <- indeg.(b) - 1;
        if indeg.(b) = 0 then avail := IS.add b !avail)
      adj.(m)
  done;
  if !placed = k then Some (List.rev !order) else None

let integer_timestamps t =
  match topological_order t with
  | None -> None
  | Some order ->
      let ts = Array.make (Async_trace.message_count t) 0 in
      List.iteri (fun i m -> ts.(m) <- i) order;
      Some ts

let is_synchronous t = topological_order t <> None

let respects t ts =
  Array.length ts = Async_trace.message_count t
  && begin
       let ok = ref true in
       for p = 0 to Async_trace.n t - 1 do
         let rec check = function
           | a :: (b :: _ as rest) ->
               if ts.(a) >= ts.(b) then ok := false;
               check rest
           | [] | [ _ ] -> ()
         in
         check (message_events_of_history (Async_trace.history t p))
       done;
       !ok
     end

let to_trace t =
  match topological_order t with
  | None -> None
  | Some order ->
      (* Per-process queues of remaining events; emitting message m first
         flushes the local events preceding it on both endpoints. *)
      let remaining = Array.init (Async_trace.n t) (Async_trace.history t) in
      let steps = ref [] in
      let flush_locals p upto_msg =
        let rec go evs =
          match evs with
          | Async_trace.ALocal :: rest ->
              steps := Trace.Local p :: !steps;
              go rest
          | (Async_trace.ASend m | Async_trace.ARecv m) :: rest
            when m = upto_msg ->
              rest
          | _ ->
              invalid_arg
                "Synchronous.to_trace: history inconsistent with topological order"
        in
        remaining.(p) <- go remaining.(p)
      in
      List.iter
        (fun m ->
          let src = Async_trace.sender t m and dst = Async_trace.receiver t m in
          flush_locals src m;
          flush_locals dst m;
          steps := Trace.Send (src, dst) :: !steps)
        order;
      Array.iteri
        (fun p evs ->
          List.iter
            (function
              | Async_trace.ALocal -> steps := Trace.Local p :: !steps
              | Async_trace.ASend _ | Async_trace.ARecv _ ->
                  invalid_arg "Synchronous.to_trace: unplaced message event")
            evs)
        remaining;
      Some (Trace.of_steps_exn ~n:(Async_trace.n t) (List.rev !steps))
