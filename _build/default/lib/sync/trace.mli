(** Synchronous computation traces.

    A computation whose messages are all synchronous is logically equivalent
    to one where messages are instantaneous (Charron-Bost et al.): its time
    diagram can be drawn with vertical arrows. We therefore represent a
    synchronous computation as one global sequence of instantaneous
    actions — each either a message atomically involving its two endpoint
    processes, or an internal event of one process. Per-process event orders
    are the projections of this sequence.

    Messages and internal events are numbered 0, 1, … in order of
    occurrence; those ids index every derived structure (message poset,
    timestamp arrays). *)

type step =
  | Send of int * int  (** [Send (src, dst)]: a synchronous message. *)
  | Local of int  (** [Local p]: an internal event of process [p]. *)

type message = { id : int; src : int; dst : int; pos : int }
(** [pos] is the action's index in the global sequence. *)

type internal = { id : int; proc : int; pos : int }

type occurrence = Msg of message | Int of internal
(** One entry of a process's local history. *)

type t

val of_steps : n:int -> step list -> (t, string) result
(** Validates process indices, [src <> dst], [n >= 1]. *)

val of_steps_exn : n:int -> step list -> t

val n : t -> int
(** Process count. *)

val message_count : t -> int
val internal_count : t -> int
val messages : t -> message array
val internals : t -> internal array
val message : t -> int -> message
(** By id. *)

val steps : t -> step list
(** The original global sequence. *)

val process_history : t -> int -> occurrence list
(** The occurrences involving a process, in its local order. *)

val participants : message -> int * int
(** [(src, dst)]. *)

val involves : message -> int -> bool

val topology : t -> Synts_graph.Graph.t
(** The communication graph actually used: one edge per communicating
    pair. *)

val restrict_messages : t -> t
(** The trace with internal events dropped (message ids preserved). *)

val append : t -> step list -> (t, string) result
(** Extend a trace with further steps. *)

val concat_steps : t -> t -> (t, string) result
(** Sequential composition (same process count); message ids of the second
    trace are shifted. *)

val pp : Format.formatter -> t -> unit
