let default_label p = Printf.sprintf "P%d" (p + 1)

let vector_to_string v =
  "("
  ^ String.concat "," (List.map string_of_int (Array.to_list v))
  ^ ")"

let build ?(labels = default_label) trace header_of_message =
  let n = Trace.n trace in
  let steps = Trace.steps trace in
  let columns = List.length steps in
  let label_width =
    List.fold_left
      (fun w p -> max w (String.length (labels p)))
      0
      (List.init n Fun.id)
  in
  (* Column widths: wide enough for that column's header. *)
  let widths = Array.make columns 4 in
  let headers = Array.make columns "" in
  let mid = ref 0 in
  List.iteri
    (fun c step ->
      match step with
      | Trace.Send _ ->
          let h = header_of_message !mid in
          incr mid;
          headers.(c) <- h;
          widths.(c) <- max 4 (String.length h + 1)
      | Trace.Local _ -> ())
    steps;
  let buf = Buffer.create 1024 in
  (* Header row. *)
  Buffer.add_string buf (String.make (label_width + 1) ' ');
  Array.iteri
    (fun c h ->
      Buffer.add_string buf h;
      Buffer.add_string buf (String.make (widths.(c) - String.length h) ' '))
    headers;
  Buffer.add_char buf '\n';
  (* Process rows. *)
  for p = 0 to n - 1 do
    let l = labels p in
    Buffer.add_string buf l;
    Buffer.add_string buf (String.make (label_width - String.length l + 1) ' ');
    List.iteri
      (fun c step ->
        let cell =
          match step with
          | Trace.Send (src, dst) ->
              let lo = min src dst and hi = max src dst in
              if p = src then '*'
              else if p = dst then if dst > src then 'v' else '^'
              else if p > lo && p < hi then '|'
              else '-'
          | Trace.Local q -> if p = q then '#' else '-'
        in
        Buffer.add_char buf cell;
        Buffer.add_string buf (String.make (widths.(c) - 1) '-'))
      steps;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render ?labels trace =
  build ?labels trace (fun m -> Printf.sprintf "m%d" (m + 1))

let render_with_timestamps trace vectors =
  if Array.length vectors <> Trace.message_count trace then
    invalid_arg "Diagram.render_with_timestamps: vector count mismatch";
  build trace (fun m -> vector_to_string vectors.(m))
