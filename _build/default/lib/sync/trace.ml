type step = Send of int * int | Local of int
type message = { id : int; src : int; dst : int; pos : int }
type internal = { id : int; proc : int; pos : int }
type occurrence = Msg of message | Int of internal

type t = {
  n : int;
  steps : step array;
  messages : message array;
  internals : internal array;
  histories : occurrence list array;  (* per process, in local order *)
}

let of_steps ~n steps =
  if n < 1 then Error "trace needs at least one process"
  else begin
    let bad = ref None in
    let msgs = ref [] and ints = ref [] in
    let mcount = ref 0 and icount = ref 0 in
    let histories = Array.make n [] in
    List.iteri
      (fun pos step ->
        if !bad = None then
          match step with
          | Send (src, dst) ->
              if src < 0 || src >= n || dst < 0 || dst >= n then
                bad := Some (Printf.sprintf "step %d: process out of range" pos)
              else if src = dst then
                bad := Some (Printf.sprintf "step %d: self-message" pos)
              else begin
                let m = { id = !mcount; src; dst; pos } in
                incr mcount;
                msgs := m :: !msgs;
                histories.(src) <- Msg m :: histories.(src);
                histories.(dst) <- Msg m :: histories.(dst)
              end
          | Local p ->
              if p < 0 || p >= n then
                bad := Some (Printf.sprintf "step %d: process out of range" pos)
              else begin
                let e = { id = !icount; proc = p; pos } in
                incr icount;
                ints := e :: !ints;
                histories.(p) <- Int e :: histories.(p)
              end)
      steps;
    match !bad with
    | Some msg -> Error msg
    | None ->
        Ok
          {
            n;
            steps = Array.of_list steps;
            messages = Array.of_list (List.rev !msgs);
            internals = Array.of_list (List.rev !ints);
            histories = Array.map List.rev histories;
          }
  end

let of_steps_exn ~n steps =
  match of_steps ~n steps with
  | Ok t -> t
  | Error msg -> invalid_arg ("Trace.of_steps: " ^ msg)

let n t = t.n
let message_count t = Array.length t.messages
let internal_count t = Array.length t.internals
let messages t = t.messages
let internals t = t.internals

let message t id =
  if id < 0 || id >= Array.length t.messages then
    invalid_arg "Trace.message: id out of range";
  t.messages.(id)

let steps t = Array.to_list t.steps

let process_history t p =
  if p < 0 || p >= t.n then invalid_arg "Trace.process_history: out of range";
  t.histories.(p)

let participants (m : message) = (m.src, m.dst)
let involves (m : message) p = m.src = p || m.dst = p

let topology t =
  Array.fold_left
    (fun g (m : message) -> Synts_graph.Graph.add_edge g m.src m.dst)
    (Synts_graph.Graph.empty t.n)
    t.messages

let restrict_messages t =
  of_steps_exn ~n:t.n
    (List.filter_map
       (function Send _ as s -> Some s | Local _ -> None)
       (steps t))

let append t extra =
  of_steps ~n:t.n (steps t @ extra)

let concat_steps a b =
  if n a <> n b then Error "process counts differ"
  else of_steps ~n:(n a) (steps a @ steps b)

let pp ppf t =
  Format.fprintf ppf "@[<v>trace n=%d messages=%d internals=%d@," t.n
    (message_count t) (internal_count t);
  Array.iteri
    (fun pos step ->
      match step with
      | Send (s, d) -> Format.fprintf ppf "  %3d: P%d -> P%d@," pos s d
      | Local p -> Format.fprintf ppf "  %3d: P%d internal@," pos p)
    t.steps;
  Format.fprintf ppf "@]"
