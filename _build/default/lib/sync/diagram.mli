(** ASCII time diagrams with vertical message arrows (paper Fig. 1/6
    style).

    Each global action occupies one column; a message is a vertical arrow
    from its sender's row to its receiver's row ('^' or 'v' marks the
    receiving end), an internal event is a '#'. The header row labels
    message columns m1, m2, … in occurrence order. *)

val render : ?labels:(int -> string) -> Trace.t -> string
(** [labels] overrides process row labels (default [P1], [P2], …, matching
    the paper's 1-based process naming). *)

val render_with_timestamps : Trace.t -> int array array -> string
(** Like {!render} with each message column's vector printed vertically
    under the header, e.g. [(1,1,1)] for the paper's Figure 6. The array is
    indexed by message id. *)
