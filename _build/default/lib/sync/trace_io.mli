(** Plain-text serialization of traces.

    A small line format so recorded computations can be saved, shared and
    re-analyzed by the CLI (`synts` reads and writes it):

    {v
    synts-trace 1
    n 4
    s 0 1      # synchronous message P0 -> P1
    l 2        # internal event on P2
    v}

    Blank lines and [#] comments are ignored. *)

val to_string : Trace.t -> string

val of_string : string -> (Trace.t, string) result
(** Errors carry a 1-based line number. *)

val save : string -> Trace.t -> unit
(** [save path trace]. *)

val load : string -> (Trace.t, string) result
