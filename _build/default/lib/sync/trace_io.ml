let magic = "synts-trace 1"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Trace.n t));
  List.iter
    (fun step ->
      Buffer.add_string buf
        (match step with
        | Trace.Send (src, dst) -> Printf.sprintf "s %d %d\n" src dst
        | Trace.Local p -> Printf.sprintf "l %d\n" p))
    (Trace.steps t);
  Buffer.contents buf

let strip line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.trim line

let of_string s =
  let lines = String.split_on_char '\n' s in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec parse lineno n steps = function
    | [] -> (
        match n with
        | None -> Error "missing process-count line (n <N>)"
        | Some n -> (
            match Trace.of_steps ~n (List.rev steps) with
            | Ok t -> Ok t
            | Error e -> Error e))
    | line :: rest -> (
        let lineno = lineno + 1 in
        match strip line with
        | "" -> parse lineno n steps rest
        | line when line = magic -> parse lineno n steps rest
        | line -> (
            match (String.split_on_char ' ' line, n) with
            | [ "n"; count ], None -> (
                match int_of_string_opt count with
                | Some c -> parse lineno (Some c) steps rest
                | None -> err lineno "bad process count")
            | [ "n"; _ ], Some _ -> err lineno "duplicate process count"
            | _, None -> err lineno "steps before the process count"
            | [ "s"; a; b ], Some _ -> (
                match (int_of_string_opt a, int_of_string_opt b) with
                | Some a, Some b ->
                    parse lineno n (Trace.Send (a, b) :: steps) rest
                | _ -> err lineno "bad message endpoints")
            | [ "l"; p ], Some _ -> (
                match int_of_string_opt p with
                | Some p -> parse lineno n (Trace.Local p :: steps) rest
                | None -> err lineno "bad process id")
            | _ -> err lineno (Printf.sprintf "unrecognized line %S" line)))
  in
  parse 0 None [] lines

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (In_channel.input_all ic))
