(* The synts command-line interface.

   synts figures [ID ...]        reproduce the paper's figures
   synts experiments [ID ...]    run the experiment suite (EXPERIMENTS.md rows)
   synts decompose TOPO          edge-decompose a topology
   synts simulate TOPO           run a workload and print timestamps
   synts verify TOPO             validate all schemes against the oracle *)

module Rng = Synts_util.Rng
module Graph = Synts_graph.Graph
module Topology = Synts_graph.Topology
module Vertex_cover = Synts_graph.Vertex_cover
module Decomposition = Synts_graph.Decomposition
module Trace = Synts_sync.Trace
module Diagram = Synts_sync.Diagram
module Message_poset = Synts_sync.Message_poset
module Dilworth = Synts_poset.Dilworth
module Vector = Synts_clock.Vector
module Online = Synts_core.Online
module Offline = Synts_core.Offline
module Internal_events = Synts_core.Internal_events
module Workload = Synts_workload.Workload
module Validate = Synts_check.Validate
module Experiments = Synts_experiments.Experiments
module Telemetry = Synts_telemetry.Telemetry
module Lint = Synts_lint.Lint
module Finding = Synts_lint.Finding
module Epoch_lint = Synts_lint.Epoch_lint
module Fault_plan = Synts_fault.Plan
module Injector = Synts_fault.Injector
module Churn = Synts_fault.Churn
module Membership = Synts_graph.Membership
module Tracer = Synts_trace.Tracer
module Tracelog = Synts_trace.Tracelog
module Chrome = Synts_trace.Chrome
module Trace_report = Synts_trace.Report

open Cmdliner

(* The flags every subcommand shares (--seed, --metrics, --format,
   topology arguments) live in one place: Synts_cli.Cli.Flags. *)
include Synts_cli.Cli.Flags

(* ---------- trace output ---------- *)

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a causal trace of the run and write it to FILE: Chrome \
           trace-event JSON (Perfetto-loadable, with sync_precedes flow \
           arrows) when FILE ends in .json, synts-tracelog JSONL \
           otherwise. Inspect with $(b,synts trace report).")

let start_tracing () =
  Tracer.set_enabled true;
  Tracer.clear ()

let warn_dropped dropped =
  if dropped > 0 then
    Printf.eprintf
      "synts: %d trace spans dropped (ring buffer overflow); the file holds \
       only a suffix of the run\n"
      dropped

let write_trace path =
  let spans = Tracer.to_list () in
  let dropped = Tracer.dropped Tracer.default in
  warn_dropped dropped;
  if Filename.check_suffix path ".json" then Chrome.save path ~dropped spans
  else Tracelog.save path ~dropped spans

let topology_t =
  Arg.(
    required
    & pos 0 (some topology_conv) None
    & info [] ~docv:"TOPOLOGY"
        ~doc:
          "Topology spec: star:N, triangle, complete:N, path:N, ring:N, \
           grid:RxC, cs:SxC (client-server), triangles:T, btree:AxD, \
           tree:N, gnp:N:P, connected:N:P, hypercube:D, fig4, fig2b — or \
           @FILE for a saved adjacency list.")

(* ---------- figures ---------- *)

let figures_cmd =
  let ids_t =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Figure ids (f1 f2 f3 f4 f6 f8 f9); all when omitted.")
  in
  let run ids =
    let ids = if ids = [] then Experiments.figure_ids else ids in
    let rc =
      List.fold_left
        (fun rc id ->
          match Experiments.figure id with
          | Ok text ->
              print_string text;
              print_newline ();
              rc
          | Error e ->
              prerr_endline e;
              1)
        0 ids
    in
    exit rc
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce the paper's figures textually.")
    Term.(const run $ ids_t)

(* ---------- experiments ---------- *)

let experiments_cmd =
  let ids_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (e1..e10); all when omitted.")
  in
  let run seed ids metrics trace =
    if metrics <> None then begin
      Telemetry.set_enabled true;
      Telemetry.reset ()
    end;
    if trace <> None then start_tracing ();
    let tables = Experiments.all ~seed in
    let wanted =
      if ids = [] then tables
      else
        List.filter
          (fun t ->
            List.mem (String.lowercase_ascii t.Experiments.id) ids
            || List.mem t.Experiments.id ids)
          tables
    in
    if wanted = [] then begin
      prerr_endline "no matching experiments";
      exit 1
    end;
    List.iter
      (fun t -> Format.printf "%a@." Experiments.pp_table t)
      wanted;
    Option.iter dump_metrics metrics;
    Option.iter write_trace trace
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run the experiment suite and print EXPERIMENTS.md tables.")
    Term.(const run $ seed_t $ ids_t $ metrics_t $ trace_t)

(* ---------- decompose ---------- *)

let decompose_cmd =
  let method_t =
    Arg.(
      value
      & opt (enum [ ("paper", `Paper); ("vc", `Vc); ("sequential", `Sequential);
                    ("exact", `Exact); ("best", `Best) ])
          `Paper
      & info [ "method" ] ~docv:"METHOD"
          ~doc:"paper (Fig. 7), vc (vertex-cover stars), sequential, exact, best.")
  in
  let dot_t =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")
  in
  let run seed spec method_ dot =
    let g = realize_topology seed spec in
    let d =
      match method_ with
      | `Paper -> Some (Decomposition.paper g)
      | `Sequential -> Some (Decomposition.sequential g)
      | `Best -> Some (Decomposition.best g)
      | `Exact -> Decomposition.exact g
      | `Vc -> (
          match Decomposition.of_vertex_cover g (Vertex_cover.two_approx g) with
          | Ok d -> Some d
          | Error e ->
              prerr_endline e;
              exit 1)
    in
    match d with
    | None ->
        prerr_endline "exact search budget exhausted; try a smaller topology";
        exit 1
    | Some d ->
        if dot then print_string (Synts_export.Dot.decomposition g d)
        else begin
          Format.printf "topology %s: N=%d, M=%d@." (topo_to_string spec)
            (Graph.n g) (Graph.m g);
          Format.printf "%a@." (Decomposition.pp ?labels:None) d;
          Format.printf "timestamp size d = %d (Fidge-Mattern would use %d)@."
            (Decomposition.size d) (Graph.n g)
        end
  in
  Cmd.v
    (Cmd.info "decompose" ~doc:"Edge-decompose a communication topology.")
    Term.(const run $ seed_t $ topology_t $ method_t $ dot_t)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let messages_t =
    Arg.(value & opt int 20 & info [ "messages"; "m" ] ~docv:"M" ~doc:"Message count.")
  in
  let internal_t =
    Arg.(
      value & opt float 0.0
      & info [ "internal" ] ~docv:"P" ~doc:"Internal-event probability.")
  in
  let offline_t =
    Arg.(value & flag & info [ "offline" ] ~doc:"Use the offline (Dilworth realizer) algorithm.")
  in
  let diagram_t =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Render the time diagram.")
  in
  let save_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Also write the trace to FILE.")
  in
  let loss_t =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:
            "Packet-loss probability for the network replay that populates \
             the $(b,--metrics) snapshot (exercises retransmissions).")
  in
  let topo_pos_t =
    Arg.(
      value
      & pos 0 (some topology_conv) None
      & info [] ~docv:"TOPOLOGY"
          ~doc:
            "Topology spec (see $(b,synts decompose --help)); \
             alternatively pass $(b,--topology).")
  in
  let topo_opt_t =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "topology" ] ~docv:"TOPOLOGY"
          ~doc:"Topology spec, as a named alternative to the positional \
                argument.")
  in
  let run seed pos_spec opt_spec messages internal offline diagram save metrics
      loss tracefile =
    check_loss loss;
    let spec =
      match (pos_spec, opt_spec) with
      | Some s, None | None, Some s -> s
      | Some _, Some _ ->
          prerr_endline
            "synts simulate: give the topology once (positional or \
             --topology, not both)";
          exit 1
      | None, None ->
          prerr_endline "synts simulate: a TOPOLOGY (or --topology) is required";
          exit 1
    in
    if metrics <> None then begin
      Telemetry.set_enabled true;
      Telemetry.reset ()
    end;
    if tracefile <> None then start_tracing ();
    let g = realize_topology seed spec in
    let trace =
      Workload.random (Rng.create (seed + 1)) ~topology:g ~messages
        ~internal_prob:internal ()
    in
    Option.iter (fun path -> Synts_sync.Trace_io.save path trace) save;
    let d = Decomposition.best g in
    if tracefile <> None then begin
      (* Cover the session layer too: feed the observation stream through
         a monitoring session so the written trace carries session-level
         message spans (stamps, per-observe cell cost) alongside the
         poset/net spans the stamping and replay below record. *)
      let session = Synts_session.Session.of_decomposition d in
      List.iter
        (fun step ->
          ignore
            (Synts_session.Session.observe session
               (match step with
               | Trace.Send (src, dst) ->
                   Synts_session.Session.Message { src; dst }
               | Trace.Local proc -> Synts_session.Session.Internal { proc })))
        (Trace.steps trace);
      ignore (Synts_session.Session.finish_events session)
    end;
    let ts =
      if offline then Offline.timestamp_trace trace
      else Online.timestamp_trace d trace
    in
    if diagram then print_string (Diagram.render_with_timestamps trace ts)
    else
      Array.iter
        (fun (m : Trace.message) ->
          Format.printf "m%-3d P%d->P%d  %s@." (m.Trace.id + 1)
            (m.Trace.src + 1) (m.Trace.dst + 1)
            (Vector.to_string ts.(m.Trace.id)))
        (Trace.messages trace);
    let p = Message_poset.of_trace trace in
    Format.printf
      "@.%d messages, vector size %d, poset width %d, %s algorithm@."
      (Trace.message_count trace)
      (if Array.length ts > 0 then Vector.size ts.(0) else 0)
      (Dilworth.width p)
      (if offline then "offline" else "online");
    if metrics <> None || tracefile <> None then begin
      (* Replay the computation over the simulated network so the metrics
         snapshot and the recorded trace also cover the protocol layer:
         packet counters, retransmissions, transit spans, the
         delivery-latency histogram and per-message piggyback bytes.
         Deterministic from the same seed. *)
      let scripts = Synts_net.Script.of_trace trace in
      ignore (Synts_net.Rendezvous.run ~seed ~loss ~decomposition:d scripts)
    end;
    (match metrics with
    | None -> ()
    | Some fmt ->
        print_newline ();
        dump_metrics fmt);
    Option.iter write_trace tracefile
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Generate a random synchronous computation and timestamp it.")
    Term.(
      const run $ seed_t $ topo_pos_t $ topo_opt_t $ messages_t $ internal_t
      $ offline_t $ diagram_t $ save_t $ metrics_t $ loss_t $ trace_t)

(* ---------- analyze ---------- *)

let analyze_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A trace file (see synts simulate --save).")
  in
  let diagram_t =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Render the time diagram.")
  in
  let offline_t =
    Arg.(value & flag & info [ "offline" ] ~doc:"Use the offline algorithm.")
  in
  let orphan_t =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "orphan" ] ~docv:"PROC:SURVIVES"
          ~doc:
            "Report orphaned messages after process $(b,PROC) crashes \
             keeping its first $(b,SURVIVES) message participations.")
  in
  let run file diagram offline orphan =
    match Synts_sync.Trace_io.load file with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok trace ->
        let topology = Trace.topology trace in
        let d = Decomposition.best topology in
        let ts =
          if offline then Offline.timestamp_trace trace
          else Online.timestamp_trace d trace
        in
        Format.printf
          "%s: %d processes, %d messages, %d internal events, vector size %d@."
          file (Trace.n trace)
          (Trace.message_count trace)
          (Trace.internal_count trace)
          (if Array.length ts > 0 then Vector.size ts.(0) else 0);
        if diagram then print_string (Diagram.render_with_timestamps trace ts);
        let verdict = Validate.message_timestamps trace ts in
        Format.printf "timestamps encode the message order: %s@."
          (if Validate.ok verdict then "yes" else "NO");
        (match orphan with
        | None -> ()
        | Some (proc, survives) ->
            let failure = { Synts_detect.Orphan.proc; survives } in
            let show ids =
              String.concat ", "
                (List.map (fun m -> Printf.sprintf "m%d" (m + 1)) ids)
            in
            Format.printf "crash of P%d keeping %d messages:@." (proc + 1)
              survives;
            Format.printf "  lost     : %s@."
              (show (Synts_detect.Orphan.lost_messages trace failure));
            Format.printf "  orphaned : %s@."
              (show (Synts_detect.Orphan.orphans trace ts failure));
            Format.printf "  rollback : %s@."
              (String.concat ", "
                 (List.map
                    (fun p -> Printf.sprintf "P%d" (p + 1))
                    (Synts_detect.Orphan.rollback_processes trace ts failure))))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Load a saved trace, timestamp it and answer queries.")
    Term.(const run $ file_t $ diagram_t $ offline_t $ orphan_t)

(* ---------- monitor ---------- *)

let monitor_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A trace file to feed through a session.")
  in
  let adaptive_t =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:"Pretend the topology is unknown (adaptive stamping).")
  in
  let window_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"W" ~doc:"Sliding window for statistics.")
  in
  let run file adaptive window =
    match Synts_sync.Trace_io.load file with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok trace ->
        let session =
          if adaptive then
            Synts_session.Session.adaptive ?window ~n:(Trace.n trace) ()
          else Synts_session.Session.of_topology ?window (Trace.topology trace)
        in
        ignore
          (Synts_ingest.Ingest.feed_trace
             (Synts_session.Session.ingest session)
             trace);
        let resolved = Synts_session.Session.finish_events session in
        Format.printf "monitored %d messages, %d internal events@."
          (Synts_session.Session.messages_observed session)
          (List.length resolved);
        Format.printf "vector size        : %d (FM would use %d)@."
          (Synts_session.Session.dimension session)
          (Trace.n trace);
        Format.printf "poset width so far : %d@."
          (Synts_session.Session.width session);
        Format.printf "concurrency ratio  : %.3f@."
          (Synts_session.Session.concurrency_ratio session);
        Format.printf "longest causal chain: %d@."
          (Synts_session.Session.longest_chain session);
        Format.printf "frontier (%d maximal messages):@."
          (List.length (Synts_session.Session.frontier session));
        List.iter
          (fun (id, v) ->
            Format.printf "  m%d %s@." (id + 1) (Vector.to_string v))
          (Synts_session.Session.frontier session)
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:"Feed a trace through a monitoring session and print the live \
             statistics.")
    Term.(const run $ file_t $ adaptive_t $ window_t)

(* ---------- offline ---------- *)

let offline_cmd =
  let file_t =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A saved trace file (synts-trace format, see $(b,synts simulate \
             --save)). Omit it and pass $(b,--topology) to stamp a \
             generated workload instead.")
  in
  let gen_topology_t =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "topology" ] ~docv:"TOPOLOGY"
          ~doc:"Generate and stamp a random workload over this topology.")
  in
  let messages_t =
    Arg.(
      value & opt int 1000
      & info [ "messages"; "m" ] ~docv:"M"
          ~doc:"Message count for the generated workload.")
  in
  let internal_t =
    Arg.(
      value & opt float 0.1
      & info [ "internal" ] ~docv:"P"
          ~doc:"Internal-event probability for the generated workload.")
  in
  let stream_t =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Stamp with the streaming Dilworth pipeline — one pass, memory \
             bounded by $(b,--window) — instead of the batch Figure 9 \
             path (closure + matching over the whole poset).")
  in
  let window_t =
    Arg.(
      value & opt int 1024
      & info [ "window" ] ~docv:"W"
          ~doc:"Live-window bound of the streaming pipeline (with \
                $(b,--stream)).")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also run the batch path and require the same \
             precedes/concurrent verdict on every message pair \
             (order-equivalence); exit non-zero on any mismatch. Only \
             feasible at batch scale (a few thousand messages).")
  in
  let timings_t =
    Arg.(
      value & flag
      & info [ "timings" ] ~doc:"Print wall-clock stamping throughput.")
  in
  let print_t =
    Arg.(value & flag & info [ "print" ] ~doc:"Print every message stamp.")
  in
  let run seed file gen_topology messages internal stream window check timings
      print_stamps tracefile =
    if tracefile <> None then start_tracing ();
    let tr =
      match (file, gen_topology) with
      | Some path, _ -> (
          match Synts_sync.Trace_io.load path with
          | Ok tr -> tr
          | Error e ->
              prerr_endline e;
              exit 1)
      | None, Some spec ->
          check_loss internal;
          let g = realize_topology seed spec in
          Workload.random
            (Rng.create (seed + 1))
            ~topology:g ~messages ~internal_prob:internal ()
      | None, None ->
          prerr_endline "synts offline: provide a FILE or --topology SPEC";
          exit 2
    in
    let m = Trace.message_count tr in
    let t0 = Unix.gettimeofday () in
    let stats = ref None in
    let ts =
      if stream then begin
        let s = Offline.Stream.create ~window ~n:(Trace.n tr) () in
        let out =
          Array.map
            (fun (msg : Trace.message) ->
              Offline.Stream.observe s ~src:msg.Trace.src ~dst:msg.Trace.dst)
            (Trace.messages tr)
        in
        stats := Some s;
        out
      end
      else Offline.timestamp_trace tr
    in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf
      "%s: %d processes, %d messages, %s path, vector size %d (⌊N/2⌋ = %d)@."
      (match file with Some p -> p | None -> "generated workload")
      (Trace.n tr) m
      (if stream then "streaming" else "batch")
      (if Array.length ts > 0 then Vector.size ts.(m - 1) else 0)
      (Offline.width_bound ~n:(Trace.n tr));
    (match !stats with
    | None -> ()
    | Some s ->
        Format.printf "width %d%s, retired %d, repairs %d@."
          (Offline.Stream.width s)
          (if Offline.Stream.exact_width s then "" else " (upper bound)")
          (Offline.Stream.retired s)
          (Offline.Stream.repairs s);
        Format.printf "peak live memory: %d words (window %d)@."
          (Offline.Stream.peak_live_words s)
          window);
    if timings then
      Format.printf "stamped in %.3f s (%.0f stamps/s)@." dt
        (if dt > 0. then float_of_int m /. dt else 0.);
    if print_stamps then
      Array.iter
        (fun (msg : Trace.message) ->
          Format.printf "m%-3d P%d->P%d  %s@." (msg.Trace.id + 1)
            (msg.Trace.src + 1) (msg.Trace.dst + 1)
            (Vector.to_string ts.(msg.Trace.id)))
        (Trace.messages tr);
    Option.iter write_trace tracefile;
    if check then begin
      let oracle =
        if stream then Offline.timestamp_trace tr
        else Offline.stream_trace ~window tr
      in
      let mismatches = ref 0 in
      for i = 0 to m - 1 do
        for j = i + 1 to m - 1 do
          if
            Offline.precedes ts.(i) ts.(j) <> Offline.precedes oracle.(i) oracle.(j)
            || Offline.precedes ts.(j) ts.(i)
               <> Offline.precedes oracle.(j) oracle.(i)
          then incr mismatches
        done
      done;
      Format.printf "order-equivalence stream vs batch: %s (%d pairs)@."
        (if !mismatches = 0 then "exact"
         else Printf.sprintf "%d MISMATCHES" !mismatches)
        (m * (m - 1) / 2);
      if !mismatches > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "offline"
       ~doc:
         "Timestamp a completed trace with the offline algorithm — batch \
          (Figure 9) or the bounded-memory streaming pipeline \
          ($(b,--stream)).")
    Term.(
      const run $ seed_t $ file_t $ gen_topology_t $ messages_t $ internal_t
      $ stream_t $ window_t $ check_t $ timings_t $ print_t $ trace_t)

(* ---------- protocol ---------- *)

(* ---------- serve / load ---------- *)

let address_conv =
  let parse s =
    Synts_server.Server.address_of_string s
    |> Result.map_error (fun e -> `Msg e)
  in
  Arg.conv (parse, Synts_server.Server.pp_address)

let address_arg ~name ~doc default =
  Arg.(value & opt address_conv default & info [ name ] ~docv:"ADDR" ~doc)

let shards_t =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Worker domains stamping in parallel, each owning a slice of the \
           timestamp components (clamped to the decomposition size).")

let serve_cmd =
  let addr_t =
    address_arg ~name:"listen"
      ~doc:
        "Listen address: $(i,HOST:PORT) for TCP, anything else is a Unix \
         socket path."
      (Synts_server.Server.Unix_socket "synts.sock")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Log every ingested event so clients can request a bit-exact \
             replay through the single-domain oracle ($(b,synts load \
             --verify)).")
  in
  let topology_t =
    Arg.(
      required
      & pos 0 (some topology_conv) None
      & info [] ~docv:"TOPO" ~doc:"Topology the observed system runs on.")
  in
  let offline_t =
    Arg.(
      value & flag
      & info [ "offline" ]
          ~doc:
            "Stamp with the streaming offline pipeline (bounded-memory \
             rank vectors, order-equivalent to the batch Figure 9 path) \
             instead of the sharded Fig. 5 engine. $(b,--check) then \
             verifies order-equivalence against the batch oracle rather \
             than bit-exactness.")
  in
  let window_t =
    Arg.(
      value & opt int 1024
      & info [ "window" ] ~docv:"W"
          ~doc:"Live-window bound of the offline pipeline (with \
                $(b,--offline)).")
  in
  let admin_t =
    Arg.(
      value
      & opt (some address_conv) None
      & info [ "admin" ] ~docv:"ADDR"
          ~doc:
            "Also listen on ADDR for the introspection channel — a \
             second frame family answering $(b,health), $(b,metrics), \
             $(b,stats) and $(b,tracedump), scraped by $(b,synts top).")
  in
  let run seed topo address shards check offline window admin metrics =
    let g = realize_topology seed topo in
    let d = Decomposition.best g in
    if offline then
      Format.printf "synts serve: %s (N=%d) on %a, offline stream (window %d)%s@."
        (topo_to_string topo)
        (Decomposition.graph_vertices d)
        Synts_server.Server.pp_address address window
        (if check then ", equivalence checking on" else "")
    else
      Format.printf "synts serve: %s (N=%d, d=%d) on %a, %d shard(s)%s@."
        (topo_to_string topo)
        (Decomposition.graph_vertices d)
        (Decomposition.size d) Synts_server.Server.pp_address address
        (max 1 (min shards (max 1 (Decomposition.size d))))
        (if check then ", oracle checking on" else "");
    Option.iter
      (fun a ->
        Format.printf "admin channel on %a (synts top --connect)@."
          Synts_server.Server.pp_address a)
      admin;
    Synts_server.Server.serve ~shards ~check ~offline ~window ?admin address d;
    Format.printf "synts serve: shut down@.";
    Option.iter dump_metrics metrics
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the sharded streaming stamping daemon.")
    Term.(const run $ seed_t $ topology_t $ addr_t $ shards_t $ check_t
          $ offline_t $ window_t $ admin_t $ metrics_t)

let load_cmd =
  let addr_t =
    address_arg ~name:"connect"
      ~doc:"Daemon address (must match the server's $(b,--listen))."
      (Synts_server.Server.Unix_socket "synts.sock")
  in
  let clients_t =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let batches_t =
    Arg.(
      value & opt int 64
      & info [ "batches" ] ~docv:"B" ~doc:"Observe batches per client.")
  in
  let batch_t =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"K" ~doc:"Events per batch.")
  in
  let internal_t =
    Arg.(
      value & opt float 0.1
      & info [ "internal" ] ~docv:"P"
          ~doc:"Internal-event probability in the generated workload.")
  in
  let spawn_t =
    Arg.(
      value & flag
      & info [ "spawn" ]
          ~doc:
            "Run the daemon in-process (own domain) on the $(b,--connect) \
             address instead of dialling an external one; shut it down \
             when the run ends.")
  in
  let verify_t =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "After the run, ask the server to replay its whole arrival \
             log through the single-domain oracle and exit non-zero on \
             any mismatch (the server needs $(b,--check); implied for \
             $(b,--spawn)).")
  in
  let topology_t =
    Arg.(
      required
      & pos 0 (some topology_conv) None
      & info [] ~docv:"TOPO"
          ~doc:"Topology (must match the server's decomposition).")
  in
  let run seed topo address clients batches batch internal spawn shards verify
      format metrics =
    check_loss internal;
    let g = realize_topology seed topo in
    let d = Decomposition.best g in
    let handle =
      if spawn then
        Some (Synts_server.Server.spawn ~shards ~check:(verify || spawn)
                address d)
      else None
    in
    let report =
      Synts_server.Load.run ~clients ~batches ~batch ~internal_prob:internal
        ~seed address d
    in
    let verified =
      if verify then begin
        let c = Synts_server.Client.connect address in
        let r = Synts_server.Client.verify_server c in
        Synts_server.Client.close c;
        Some r
      end
      else None
    in
    (match handle with
    | Some h ->
        let c = Synts_server.Client.connect address in
        Synts_server.Client.shutdown c;
        Synts_server.Server.join h
    | None -> ());
    (match format with
    | `Text ->
        Format.printf "%a@." Synts_server.Load.pp_report report;
        Option.iter
          (function
            | Ok (ok, checked) ->
                Format.printf "oracle check    %s (%d messages)@."
                  (if ok then "exact" else "MISMATCH")
                  checked
            | Error e -> Format.printf "oracle check    unavailable: %s@." e)
          verified
    | `Json ->
        let verified_json =
          match verified with
          | None -> "null"
          | Some (Ok (ok, _)) -> string_of_bool ok
          | Some (Error _) -> "null"
        in
        Format.printf
          {|{"clients":%d,"batches":%d,"events":%d,"messages":%d,"seconds":%.6f,"events_per_sec":%.1f,"p50_ms":%.4f,"p95_ms":%.4f,"p99_ms":%.4f,"server_dropped":%d,"server_pending":%d,"verified":%s}@.|}
          report.Synts_server.Load.clients report.Synts_server.Load.batches
          report.Synts_server.Load.events report.Synts_server.Load.messages
          report.Synts_server.Load.seconds
          report.Synts_server.Load.events_per_sec
          report.Synts_server.Load.p50_ms report.Synts_server.Load.p95_ms
          report.Synts_server.Load.p99_ms
          report.Synts_server.Load.server_dropped
          report.Synts_server.Load.server_pending verified_json);
    Option.iter dump_metrics metrics;
    match verified with
    | Some (Ok (false, _)) | Some (Error _) -> exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive a stamping daemon with a seeded multi-client workload.")
    Term.(
      const run $ seed_t $ topology_t $ addr_t $ clients_t $ batches_t
      $ batch_t $ internal_t $ spawn_t $ shards_t $ verify_t
      $ report_format_t $ metrics_t)

(* ---------- top ---------- *)

(* One rendered frame of `synts top`: health header, event totals with
   rates derived from the previous sample, latency quantiles, per-shard
   load (with skew), per-connection counters and — for the offline
   backend — the streaming pipeline's watermarks. *)
let render_top ppf ~prev ~dt (ok, hbackend, procs, dim, hshards)
    (s : Synts_obs.Admin.stats) =
  let open Synts_obs.Admin in
  let events = s.messages + s.internal in
  let rate now before =
    match before with
    | Some b when dt > 0. -> float_of_int (now - b) /. dt
    | _ -> 0.
  in
  let ev_rate =
    rate events
      (Option.map (fun (p : stats) -> p.messages + p.internal) prev)
  in
  let msg_rate =
    rate s.messages (Option.map (fun (p : stats) -> p.messages) prev)
  in
  Format.fprintf ppf "synts top — %s  %s  N=%d  d=%d  shards=%d@." hbackend
    (if ok then "up" else "DOWN")
    procs dim hshards;
  Format.fprintf ppf
    "events    %d total (%d messages, %d internal)  %.0f ev/s  %.0f msg/s@."
    events s.messages s.internal ev_rate msg_rate;
  Format.fprintf ppf
    "batches   %d  clients %d  dedup %d  errors %d  dropped %d  pending %d@."
    s.batches s.clients s.dedup_hits s.errors s.dropped s.pending;
  Format.fprintf ppf "stamp lat p50 %.3f ms  p90 %.3f ms  p99 %.3f ms@."
    s.p50_ms s.p90_ms s.p99_ms;
  (match s.shards with
  | [] -> ()
  | shards ->
      let cells = List.map (fun sh -> sh.s_cells) shards in
      let total = List.fold_left ( + ) 0 cells in
      let peak = List.fold_left max 0 cells in
      let skew =
        if total = 0 then 1.
        else
          float_of_int peak
          /. (float_of_int total /. float_of_int (List.length shards))
      in
      Format.fprintf ppf "shards    load skew %.2fx@." skew;
      List.iter
        (fun sh ->
          Format.fprintf ppf
            "  s%-2d     %3.0f%%  events %d  cells %d  messages %d@." sh.shard
            (if total = 0 then 0.
             else 100. *. float_of_int sh.s_cells /. float_of_int total)
            sh.s_events sh.s_cells sh.s_messages)
        shards);
  (match s.stream with
  | None -> ()
  | Some st ->
      Format.fprintf ppf
        "stream    chains %d  live %d  retired %d  width %d%s  repairs %d@."
        st.chains st.live st.retired st.width
        (if st.exact then "" else " (bound)")
        st.repairs);
  match s.conns with
  | [] -> ()
  | conns ->
      Format.fprintf ppf "conns     %d active@." (List.length conns);
      List.iter
        (fun c ->
          Format.fprintf ppf
            "  c%-2d     in %d  out %d  dedup %d  last_seq %d@." c.conn
            c.events_in c.stamps_out c.dedup_hits c.last_seq)
        conns

let top_cmd =
  let module Admin_client = Synts_server.Admin_client in
  let connect_t =
    address_arg ~name:"connect"
      ~doc:"Admin address of the daemon (its $(b,--admin))."
      (Synts_server.Server.Unix_socket "synts-admin.sock")
  in
  let interval_t =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "i" ] ~docv:"SECS" ~doc:"Refresh interval.")
  in
  let once_t =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single sample and exit (no screen clearing).")
  in
  let spawn_t =
    Arg.(
      value & flag
      & info [ "spawn" ]
          ~doc:
            "Self-contained mode (the obs smoke tier): run the daemon \
             in-process with the admin channel on $(b,--connect) and the \
             data plane on $(b,--data), drive a seeded load, exercise all \
             four admin verbs, then render and exit — non-zero unless the \
             daemon reports healthy and stamped a non-zero message count.")
  in
  let data_t =
    address_arg ~name:"data"
      ~doc:"Data-plane listen address for $(b,--spawn)."
      (Synts_server.Server.Unix_socket "synts-top.sock")
  in
  let topo_t =
    Arg.(
      value
      & pos 0 (some topology_conv) None
      & info [] ~docv:"TOPO" ~doc:"Topology for $(b,--spawn).")
  in
  let clients_t =
    Arg.(
      value & opt int 3
      & info [ "clients" ] ~docv:"N"
          ~doc:"Client connections for the $(b,--spawn) load.")
  in
  let batches_t =
    Arg.(
      value & opt int 16
      & info [ "batches" ] ~docv:"B"
          ~doc:"Batches per client for the $(b,--spawn) load.")
  in
  let batch_t =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"K"
          ~doc:"Events per batch for the $(b,--spawn) load.")
  in
  let sample admin =
    let a = Admin_client.connect admin in
    Fun.protect
      ~finally:(fun () -> Admin_client.close a)
      (fun () -> (Admin_client.health a, Admin_client.stats a))
  in
  let run seed topo admin interval once spawn data shards clients batches
      batch =
    if spawn then begin
      let topo =
        match topo with
        | Some t -> t
        | None ->
            prerr_endline "synts top --spawn: a TOPO argument is required";
            exit 2
      in
      let g = realize_topology seed topo in
      let d = Decomposition.best g in
      start_tracing ();
      let handle =
        Synts_server.Server.spawn ~shards ~check:false ~admin data d
      in
      let finish () =
        let c = Synts_server.Client.connect data in
        Synts_server.Client.shutdown c;
        Synts_server.Server.join handle
      in
      (try
         ignore
           (Synts_server.Load.run ~clients ~batches ~batch ~seed data d)
       with e ->
         finish ();
         raise e);
      let a = Admin_client.connect admin in
      let health = Admin_client.health a in
      let prom = Admin_client.metrics a Synts_obs.Admin.Prom in
      let json = Admin_client.metrics a Synts_obs.Admin.Json in
      let stats = Admin_client.stats a in
      let t_dropped, t_spans, _jsonl = Admin_client.tracedump a in
      Admin_client.close a;
      finish ();
      render_top Format.std_formatter ~prev:None ~dt:0. health stats;
      Format.printf "metrics   %d prometheus bytes, %d json bytes@."
        (String.length prom) (String.length json);
      Format.printf "tracedump %d spans (%d dropped)@." t_spans t_dropped;
      let ok, _, _, _, _ = health in
      if (not ok) || stats.Synts_obs.Admin.messages = 0 then begin
        prerr_endline "synts top --spawn: daemon unhealthy or stamped nothing";
        exit 1
      end
    end
    else begin
      let prev = ref None and t_prev = ref (Unix.gettimeofday ()) in
      let rec loop () =
        let health, stats = sample admin in
        let now = Unix.gettimeofday () in
        let dt = now -. !t_prev in
        if not once then print_string "\027[H\027[2J";
        render_top Format.std_formatter ~prev:!prev ~dt health stats;
        Format.print_flush ();
        if not once then begin
          prev := Some stats;
          t_prev := now;
          Unix.sleepf interval;
          loop ()
        end
      in
      loop ()
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live daemon introspection: poll a $(b,synts serve --admin) \
          channel and render event rates, stamp-latency quantiles, \
          per-shard load skew, per-connection counters, loss/backpressure \
          and the streaming pipeline's watermarks.")
    Term.(
      const run $ seed_t $ topo_t $ connect_t $ interval_t $ once_t $ spawn_t
      $ data_t $ shards_t $ clients_t $ batches_t $ batch_t)

let protocol_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A process-system file: one `P<id>: intents` line per process, \
             intents separated by dots — !k (send to k), ?k (receive from \
             k), ?* (receive from anyone), # (internal event). // comments.")
  in
  let min_delay_t =
    Arg.(value & opt float 1.0 & info [ "min-delay" ] ~docv:"D")
  in
  let max_delay_t =
    Arg.(value & opt float 10.0 & info [ "max-delay" ] ~docv:"D")
  in
  let diagram_t =
    Arg.(value & flag & info [ "diagram" ] ~doc:"Render the induced diagram.")
  in
  let run seed file min_delay max_delay diagram =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Synts_net.Script.parse_system text with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok scripts ->
        let n = Array.length scripts in
        (* The topology is whatever channels the scripts mention. *)
        let g =
          let edges = ref [] in
          Array.iteri
            (fun src script ->
              List.iter
                (function
                  | Synts_net.Script.Send_to dst ->
                      edges := (src, dst) :: !edges
                  | _ -> ())
                script)
            scripts;
          Graph.of_edges n !edges
        in
        let d = Decomposition.best g in
        let o =
          Synts_net.Rendezvous.run ~seed ~min_delay ~max_delay
            ~decomposition:d scripts
        in
        Format.printf
          "executed %d messages over the simulated network (%d packets, \
           makespan %.1f), vectors of size %d@."
          (Trace.message_count o.Synts_net.Rendezvous.trace)
          o.Synts_net.Rendezvous.packets o.Synts_net.Rendezvous.makespan
          (Decomposition.size d);
        (match o.Synts_net.Rendezvous.deadlocked with
        | [] -> ()
        | stuck ->
            Format.printf "DEADLOCK: %s never completed@."
              (String.concat ", "
                 (List.map (fun p -> Printf.sprintf "P%d" p) stuck)));
        (match o.Synts_net.Rendezvous.timestamps with
        | Some ts when diagram ->
            print_string
              (Diagram.render_with_timestamps o.Synts_net.Rendezvous.trace ts)
        | Some ts ->
            Array.iter
              (fun (m : Trace.message) ->
                Format.printf "m%-3d P%d->P%d  %s@." (m.Trace.id + 1)
                  (m.Trace.src + 1) (m.Trace.dst + 1)
                  (Vector.to_string ts.(m.Trace.id)))
              (Trace.messages o.Synts_net.Rendezvous.trace)
        | None -> ());
        if o.Synts_net.Rendezvous.deadlocked <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "protocol"
       ~doc:
         "Run a process-system file over the simulated asynchronous \
          network with the REQ/ACK rendezvous protocol.")
    Term.(
      const run $ seed_t $ file_t $ min_delay_t $ max_delay_t $ diagram_t)

(* ---------- lint ---------- *)

let lint_cmd =
  let file_t =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A saved trace file (synts-trace format) or a process-system \
             file (P<id>: intents). Omit it and pass $(b,--topology) to \
             lint a generated workload instead.")
  in
  let gen_topology_t =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "topology" ] ~docv:"TOPOLOGY"
          ~doc:"Generate and lint a random workload over this topology.")
  in
  let messages_t =
    Arg.(
      value & opt int 40
      & info [ "messages"; "m" ] ~docv:"M"
          ~doc:"Message count for the generated workload.")
  in
  let internal_t =
    Arg.(
      value & opt float 0.2
      & info [ "internal" ] ~docv:"P"
          ~doc:"Internal-event probability for the generated workload.")
  in
  let format_t = report_format_t in
  let fail_on_t =
    Arg.(
      value
      & opt (enum [ ("error", `Error); ("warning", `Warning); ("never", `Never) ])
          `Error
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Exit non-zero when a finding at or above this severity exists: \
             $(b,error) (default), $(b,warning), or $(b,never).")
  in
  let explain_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"RULE_ID"
          ~doc:
            "Print the rule's rationale and the paper theorem/definition it \
             enforces, then exit. Unknown ids exit non-zero with \
             suggestions.")
  in
  let run seed file gen_topology messages internal format fail_on explain
      metrics =
    match explain with
    | Some rule -> (
        match Synts_lint.Rules.explain rule with
        | Ok text -> print_string text
        | Error msg ->
            prerr_endline ("synts lint: " ^ msg);
            exit 2)
    | None ->
        if metrics <> None then begin
          Telemetry.set_enabled true;
          Telemetry.reset ()
        end;
        let findings =
          match file with
          | Some path when Synts_model.Witness.is_witness_text
                             (In_channel.with_open_text path
                                In_channel.input_all) -> (
              (* A model-checker witness: re-derive the verdict from its
                 raw materials. Deadlock witnesses carry the system to
                 re-explore; protocol witnesses carry the schedule and the
                 stamps under suspicion. *)
              let text = In_channel.with_open_text path In_channel.input_all in
              match Synts_model.Witness.of_string text with
              | Error e ->
                  [
                    Synts_lint.Rules.finding "trace/parse"
                      Synts_lint.Finding.Global
                      (Printf.sprintf "%s: %s" path e);
                  ]
              | Ok w when w.Synts_model.Witness.rule = "model/deadlock" ->
                  Lint.audit_scripts w.Synts_model.Witness.scripts
              | Ok w -> (
                  match Synts_model.Witness.trace w with
                  | Error e ->
                      [
                        Synts_lint.Rules.finding "trace/parse"
                          Synts_lint.Finding.Global
                          (Printf.sprintf "%s: %s" path e);
                      ]
                  | Ok trace ->
                      Lint.audit_stamped trace w.Synts_model.Witness.stamps))
          | Some path -> (
              let text = In_channel.with_open_text path In_channel.input_all in
              match Synts_sync.Trace_io.of_string text with
              | Ok trace -> Lint.audit trace
              | Error trace_err -> (
                  (* Not a trace; maybe a process-system file. *)
                  match Synts_net.Script.parse_system text with
                  | Ok scripts -> Lint.audit_scripts scripts
                  | Error _ ->
                      [
                        Synts_lint.Rules.finding "trace/parse"
                          Synts_lint.Finding.Global
                          (Printf.sprintf "%s: %s" path trace_err);
                      ]))
          | None -> (
              match gen_topology with
              | None ->
                  prerr_endline
                    "synts lint: provide a FILE or --topology SPEC";
                  exit 2
              | Some spec ->
                  check_loss internal;
                  let g = realize_topology seed spec in
                  let trace =
                    Workload.random
                      (Rng.create (seed + 1))
                      ~topology:g ~messages ~internal_prob:internal ()
                  in
                  Lint.audit trace)
        in
        Lint.record findings;
        (match format with
        | `Text -> Format.printf "%a" Lint.pp_report findings
        | `Json ->
            print_string (Lint.to_json findings);
            print_newline ());
        Option.iter
          (fun fmt ->
            print_newline ();
            dump_metrics fmt)
          metrics;
        exit (Lint.exit_code ~fail_on findings)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a trace, topology decomposition or CSP \
          process system: well-formedness, crown-freedom, Def. 2 coverage \
          and size bounds, rendezvous deadlocks, and a sanitized \
          online-stamping replay.")
    Term.(
      const run $ seed_t $ file_t $ gen_topology_t $ messages_t $ internal_t
      $ format_t $ fail_on_t $ explain_t $ metrics_t)

(* ---------- model ---------- *)

let model_cmd =
  let module Protocol = Synts_model.Protocol in
  let module Checker = Synts_model.Checker in
  let module Witness = Synts_model.Witness in
  let file_t =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "A synts-model config file, or a process-system file (P<id>: \
             intents) to check directly. Omitted: the built-in \
             deadlock-free scenario for --procs/--events.")
  in
  let procs_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "procs"; "n" ] ~docv:"N" ~doc:"Process count (default 3).")
  in
  let events_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "events"; "e" ] ~docv:"E"
          ~doc:"Scenario rendezvous count (default 6).")
  in
  let faults_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "faults" ] ~docv:"K"
          ~doc:
            "Crash/recover pairs the explorer may inject anywhere in the \
             schedule (default 0).")
  in
  let mutate_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"MUTATION"
          ~doc:
            "Seed a protocol bug: $(b,skip-increment), $(b,stale-ack) or \
             $(b,forget-checkpoint). The checker must find and shrink a \
             witness.")
  in
  let dpor_t =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "dpor" ]
                ~doc:
                  "Sleep-set partial-order reduction plus state hashing \
                   (default)." );
            ( false,
              info [ "no-dpor" ]
                ~doc:
                  "Plain schedule-tree enumeration: no sleep sets, no \
                   state hashing — the baseline the reduction factor is \
                   measured against." );
          ])
  in
  let compare_t =
    Arg.(
      value & flag
      & info [ "compare-dpor" ]
          ~doc:
            "Run both with and without reduction and report the state \
             reduction factor.")
  in
  let budget_t =
    Arg.(
      value
      & opt int Checker.default_budget
      & info [ "budget" ] ~docv:"STATES"
          ~doc:"State budget per exploration (truncates beyond it).")
  in
  let witness_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness" ] ~docv:"FILE"
          ~doc:
            "Write the shrunk counterexample (synts-witness format) here; \
             feed it back to $(b,synts lint) for an independent verdict.")
  in
  let confirm_witness w =
    if w.Witness.rule = "model/deadlock" then begin
      let fs = Lint.audit_scripts w.Witness.scripts in
      let has id =
        List.exists (fun f -> f.Synts_lint.Finding.rule = id) fs
      in
      if has "csp/deadlock" then Some "csp lint confirms: csp/deadlock"
      else if has "csp/may-deadlock" then
        Some "csp lint confirms: csp/may-deadlock"
      else Some "csp lint does NOT reproduce the deadlock"
    end
    else
      match Checker.replay w with
      | Error e -> Some ("replay failed: " ^ e)
      | Ok r ->
          Some
            (Printf.sprintf
               "sanitizer finds %d error(s); CSP runtime disagrees on %d/%d \
                stamps"
               (Synts_lint.Finding.errors r.Checker.sanitizer)
               r.Checker.runtime_divergences r.Checker.runtime_messages)
  in
  let run file procs events faults mutate dpor compare budget witness_path
      format metrics =
    if metrics <> None then begin
      Telemetry.set_enabled true;
      Telemetry.reset ()
    end;
    let fail msg =
      prerr_endline ("synts model: " ^ msg);
      exit 2
    in
    let base =
      match file with
      | None -> Protocol.default
      | Some path -> (
          let text = In_channel.with_open_text path In_channel.input_all in
          match Protocol.of_string text with
          | Ok cfg -> cfg
          | Error model_err -> (
              match Synts_net.Script.parse_system text with
              | Ok scripts ->
                  {
                    Protocol.default with
                    Protocol.system = Some scripts;
                    procs = Array.length scripts;
                  }
              | Error _ -> fail (path ^ ": " ^ model_err)))
    in
    let override v field = Option.fold ~none:field ~some:Fun.id v in
    let mutation =
      match mutate with
      | None -> base.Protocol.mutation
      | Some s -> (
          match Protocol.mutation_of_string s with
          | Ok m -> Some m
          | Error e -> fail e)
    in
    let cfg =
      {
        base with
        Protocol.procs = override procs base.Protocol.procs;
        events = override events base.Protocol.events;
        faults = override faults base.Protocol.faults;
        mutation;
      }
    in
    let m =
      match Protocol.compile cfg with Ok m -> m | Error e -> fail e
    in
    let naive =
      if compare then Some (Checker.check ~budget ~dpor:false m) else None
    in
    let r = Checker.check ~budget ~dpor m in
    let reduction =
      Option.map
        (fun (nv : Checker.report) ->
          float_of_int nv.Checker.stats.Synts_explorer.Explorer.expanded
          /. float_of_int (max 1 r.Checker.stats.Synts_explorer.Explorer.expanded))
        naive
    in
    Option.iter
      (fun path ->
        match r.Checker.violation with
        | Some v -> Witness.save path v.Checker.witness
        | None -> ())
      witness_path;
    let confirmation =
      Option.bind r.Checker.violation (fun v ->
          confirm_witness v.Checker.witness)
    in
    (match format with
    | `Json ->
        let stats_json (x : Checker.report) =
          let s = x.Checker.stats in
          Printf.sprintf
            {|{"dpor":%b,"states":%d,"transitions":%d,"hash_hits":%d,"sleep_pruned":%d,"terminals":%d,"truncated":%b}|}
            x.Checker.dpor s.Synts_explorer.Explorer.expanded
            s.Synts_explorer.Explorer.transitions
            s.Synts_explorer.Explorer.hash_hits
            s.Synts_explorer.Explorer.sleep_pruned x.Checker.terminals
            s.Synts_explorer.Explorer.truncated
        in
        let violation_json =
          match r.Checker.violation with
          | None -> "null"
          | Some v ->
              Printf.sprintf {|{"rule":%S,"detail":%S,"schedule_length":%d}|}
                v.Checker.rule v.Checker.detail
                (Witness.events v.Checker.witness)
        in
        Printf.printf
          {|{"procs":%d,"faults":%d,"mutation":%s,"budget":%d,"run":%s,%s"oracle_checked":%d,"violation":%s}|}
          (Protocol.n m) cfg.Protocol.faults
          (match cfg.Protocol.mutation with
          | None -> "null"
          | Some mu -> Printf.sprintf "%S" (Protocol.mutation_to_string mu))
          budget (stats_json r)
          (match (naive, reduction) with
          | Some nv, Some f ->
              Printf.sprintf {|"baseline":%s,"reduction":%.2f,|}
                (stats_json nv) f
          | _ -> "")
          r.Checker.oracle_checked violation_json;
        print_newline ()
    | `Text ->
        Format.printf "model: %d processes, %d fault budget, mutation %s@."
          (Protocol.n m) cfg.Protocol.faults
          (match cfg.Protocol.mutation with
          | None -> "none"
          | Some mu -> Protocol.mutation_to_string mu);
        (match cfg.Protocol.churn with
        | [] ->
            Format.printf
              "decomposition: %d vector component(s) over the script \
               topology@."
              (Decomposition.size (Protocol.decomposition m))
        | churn ->
            Format.printf
              "churn: %d delta(s), %d epoch(s) —%s@." (List.length churn)
              (List.length churn + 1)
              (String.concat ""
                 (List.map
                    (fun (at, spec) -> Printf.sprintf " @%d %s" at spec)
                    churn)));
        let report_line label (x : Checker.report) =
          let s = x.Checker.stats in
          Format.printf
            "%s: %d states, %d transitions (%d hash hits, %d sleep-set \
             pruned), %d terminal schedule(s)%s@."
            label s.Synts_explorer.Explorer.expanded
            s.Synts_explorer.Explorer.transitions
            s.Synts_explorer.Explorer.hash_hits
            s.Synts_explorer.Explorer.sleep_pruned x.Checker.terminals
            (if s.Synts_explorer.Explorer.truncated then
               " [budget exhausted]"
             else "")
        in
        Option.iter (report_line "no-dpor ") naive;
        report_line (if r.Checker.dpor then "dpor     " else "no-dpor ") r;
        Option.iter
          (fun f -> Format.printf "reduction: %.1fx fewer states with DPOR@." f)
          reduction;
        (match r.Checker.violation with
        | None ->
            Format.printf
              "verdict: no schedule violates exactness, agreement or \
               deadlock-freedom (%d terminal(s), %d oracle-checked)@."
              r.Checker.terminals r.Checker.oracle_checked
        | Some v ->
            Format.printf "VIOLATION %s: %s@." v.Checker.rule v.Checker.detail;
            Format.printf "witness: %d action(s) after shrinking@."
              (Witness.events v.Checker.witness);
            Option.iter
              (fun path -> Format.printf "witness written to %s@." path)
              witness_path;
            Option.iter (Format.printf "cross-check: %s@.") confirmation));
    Option.iter
      (fun fmt ->
        print_newline ();
        dump_metrics fmt)
      metrics;
    if r.Checker.violation <> None then exit 1
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Exhaustively model-check the Fig. 5 msg/ack protocol: explore \
          every rendezvous interleaving, wildcard matching choice and \
          crash/recover placement of a small configuration, verifying \
          stamp exactness, sender/receiver agreement and \
          deadlock-freedom; shrink any violation to a minimal witness \
          schedule replayable through the CSP runtime and synts lint.")
    Term.(
      const run $ file_t $ procs_t $ events_t $ faults_t $ mutate_t $ dpor_t
      $ compare_t $ budget_t $ witness_t $ report_format_t $ metrics_t)

(* ---------- verify ---------- *)

let verify_cmd =
  let messages_t =
    Arg.(value & opt int 60 & info [ "messages"; "m" ] ~docv:"M" ~doc:"Messages per run.")
  in
  let runs_t =
    Arg.(value & opt int 10 & info [ "runs" ] ~docv:"R" ~doc:"Number of runs.")
  in
  let run seed spec messages runs =
    let g = realize_topology seed spec in
    let d = Decomposition.best g in
    let rng = Rng.create (seed + 1) in
    let failures = ref 0 in
    for r = 1 to runs do
      let trace =
        Workload.random (Rng.split rng) ~topology:g ~messages
          ~internal_prob:0.25 ()
      in
      let online = Validate.message_timestamps trace (Online.timestamp_trace d trace) in
      let offline = Validate.message_timestamps trace (Offline.timestamp_trace trace) in
      let internal = Validate.internal_stamps trace (Internal_events.of_trace d trace) in
      let ok = Validate.ok online && Validate.ok offline && Validate.ok internal in
      if not ok then incr failures;
      Format.printf "run %2d: online %a | offline %a | internal %a@." r
        Validate.pp online Validate.pp offline Validate.pp internal
    done;
    if !failures = 0 then
      Format.printf "@.all %d runs verified against the brute-force oracle@."
        runs
    else begin
      Format.printf "@.%d runs FAILED@." !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Validate online, offline and internal-event timestamps against \
             the oracle.")
    Term.(const run $ seed_t $ topology_t $ messages_t $ runs_t)

(* ---------- metrics ---------- *)

let metrics_cmd =
  let topology_opt_t =
    Arg.(
      value
      & pos 0 topology_conv (Spec (Topology.Client_server (4, 12)))
      & info [] ~docv:"TOPOLOGY"
          ~doc:"Topology for the demo run (default cs:4x12).")
  in
  let messages_t =
    Arg.(
      value & opt int 200
      & info [ "messages"; "m" ] ~docv:"M" ~doc:"Message count.")
  in
  let loss_t =
    Arg.(
      value & opt float 0.05
      & info [ "loss" ] ~docv:"P"
          ~doc:"Packet-loss probability for the network leg.")
  in
  let format_t =
    Arg.(
      value & opt metrics_format_conv `Prom
      & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output: $(b,prom) or $(b,json).")
  in
  let list_t =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the registered metric names and exit.")
  in
  let run seed spec messages loss format list =
    if list then
      List.iter
        (fun (name, help) -> Format.printf "%-45s %s@." name help)
        (Telemetry.metric_names ())
    else begin
      check_loss loss;
      Telemetry.set_enabled true;
      Telemetry.reset ();
      let g = realize_topology seed spec in
      let d = Decomposition.best g in
      let trace =
        Workload.random (Rng.create (seed + 1)) ~topology:g ~messages
          ~internal_prob:0.2 ()
      in
      (* Session layer: feed the whole observation stream, exercise the
         precedence queries, flush deferred internal events. *)
      let session = Synts_session.Session.of_decomposition d in
      let stamps =
        List.filter_map
          (fun step ->
            match
              Synts_session.Session.observe session
                (match step with
                | Trace.Send (src, dst) ->
                    Synts_session.Session.Message { src; dst }
                | Trace.Local proc -> Synts_session.Session.Internal { proc })
            with
            | Synts_session.Session.Stamped v -> Some v
            | Synts_session.Session.Deferred _ -> None)
          (Trace.steps trace)
      in
      ignore (Synts_session.Session.finish_events session);
      (match stamps with
      | a :: b :: _ ->
          ignore (Synts_session.Session.precedes session a b);
          ignore (Synts_session.Session.concurrent session a b)
      | _ -> ());
      (* Network layer: replay the computation over the lossy simulated
         network (REQ/ACK rendezvous, retransmissions, piggybacking). *)
      let scripts = Synts_net.Script.of_trace trace in
      ignore (Synts_net.Rendezvous.run ~seed ~loss ~decomposition:d scripts);
      (* CSP layer: a small effects-runtime pipeline. *)
      let module R = Synts_csp.Runtime.Make (struct
        type msg = int
      end) in
      let g3 = Topology.path 3 in
      let items = 8 in
      let programs =
        [|
          (fun api ->
            for i = 1 to items do
              ignore (api.R.send 1 i)
            done);
          R.Pattern.relay ~next:2 ~items ~transform:(fun x -> x + 1);
          (fun api ->
            for _ = 1 to items do
              api.R.internal ();
              ignore (api.R.recv ())
            done);
        |]
      in
      ignore (R.run ~seed ~decomposition:(Decomposition.best g3) ~n:3 programs);
      dump_metrics format
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a seeded demo across the session, network and CSP layers and \
          dump the telemetry snapshot (deterministic: same seed, same \
          output).")
    Term.(
      const run $ seed_t $ topology_opt_t $ messages_t $ loss_t $ format_t
      $ list_t)

(* ---------- trace ---------- *)

(* The seeded demo behind `synts trace record`: one computation pushed
   through every traced layer — session stamping, the lossy REQ/ACK
   network replay, a small CSP pipeline and the offline Dilworth
   pipeline — so one recording exercises all four tick domains.
   Deterministic: same seed, byte-identical tracelog. *)
let layered_demo ~seed ~spec ~messages ~internal_prob ~loss =
  let g = realize_topology seed spec in
  let d = Decomposition.best g in
  let trace =
    Workload.random (Rng.create (seed + 1)) ~topology:g ~messages
      ~internal_prob ()
  in
  let session = Synts_session.Session.of_decomposition d in
  List.iter
    (fun step ->
      ignore
        (Synts_session.Session.observe session
           (match step with
           | Trace.Send (src, dst) -> Synts_session.Session.Message { src; dst }
           | Trace.Local proc -> Synts_session.Session.Internal { proc })))
    (Trace.steps trace);
  ignore (Synts_session.Session.finish_events session);
  let scripts = Synts_net.Script.of_trace trace in
  ignore (Synts_net.Rendezvous.run ~seed ~loss ~decomposition:d scripts);
  let module R = Synts_csp.Runtime.Make (struct
    type msg = int
  end) in
  let items = 8 in
  let programs =
    [|
      (fun api ->
        for i = 1 to items do
          ignore (api.R.send 1 i)
        done);
      R.Pattern.relay ~next:2 ~items ~transform:(fun x -> x + 1);
      (fun api ->
        for _ = 1 to items do
          api.R.internal ();
          ignore (api.R.recv ())
        done);
    |]
  in
  ignore
    (R.run ~seed
       ~decomposition:(Decomposition.best (Topology.path 3))
       ~n:3 programs);
  ignore (Offline.timestamp_trace trace)

let trace_record_cmd =
  let topology_opt_t =
    Arg.(
      value
      & pos 0 topology_conv (Spec (Topology.Client_server (4, 12)))
      & info [] ~docv:"TOPOLOGY"
          ~doc:"Topology for the demo run (default cs:4x12).")
  in
  let messages_t =
    Arg.(
      value & opt int 120
      & info [ "messages"; "m" ] ~docv:"M" ~doc:"Message count.")
  in
  let internal_t =
    Arg.(
      value & opt float 0.2
      & info [ "internal" ] ~docv:"P" ~doc:"Internal-event probability.")
  in
  let loss_t =
    Arg.(
      value & opt float 0.05
      & info [ "loss" ] ~docv:"P"
          ~doc:"Packet-loss probability for the network leg.")
  in
  let output_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Where to write the trace: Chrome trace-event JSON when FILE \
             ends in .json, synts-tracelog JSONL otherwise.")
  in
  let run seed spec messages internal loss output =
    check_loss loss;
    start_tracing ();
    layered_demo ~seed ~spec ~messages ~internal_prob:internal ~loss;
    write_trace output;
    Format.printf "recorded %d spans (%d dropped) -> %s@."
      (Tracer.length Tracer.default)
      (Tracer.dropped Tracer.default)
      output
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run a seeded demo across the session, network, CSP and offline \
          pipeline layers with the span recorder on, and write the trace \
          (deterministic: same seed, byte-identical file).")
    Term.(
      const run $ seed_t $ topology_opt_t $ messages_t $ internal_t $ loss_t
      $ output_t)

let trace_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:
          "A recorded trace, in either format (synts-tracelog JSONL or \
           Chrome trace-event JSON); sniffed automatically.")

let trace_export_cmd =
  let format_t =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:
            "$(b,chrome) (Perfetto-loadable trace-event JSON with \
             sync_precedes flow arrows) or $(b,jsonl) (synts-tracelog).")
  in
  let output_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file; stdout if omitted.")
  in
  let run file format output =
    match Trace_report.load file with
    | Error e ->
        prerr_endline ("synts trace export: " ^ e);
        exit 1
    | Ok (spans, dropped) ->
        warn_dropped dropped;
        let text =
          match format with
          | `Chrome -> Chrome.to_string ~dropped spans
          | `Jsonl -> Tracelog.to_string ~dropped spans
        in
        (match output with
        | None -> print_string text
        | Some path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc text))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Convert a recorded trace between the JSONL and Chrome formats.")
    Term.(const run $ trace_file_t $ format_t $ output_t)

let trace_report_cmd =
  let run file =
    match Trace_report.load file with
    | Error e ->
        prerr_endline ("synts trace report: " ^ e);
        exit 1
    | Ok (spans, dropped) -> print_string (Trace_report.render ~dropped spans)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Per-layer logical-time attribution from a recorded trace: span \
          statistics with p50/p90/p99, message and stamp-cost summaries, \
          and the width of the message poset over time.")
    Term.(const run $ trace_file_t)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Causal tracing: record span logs keyed by logical ticks, export \
          them as Perfetto-loadable Chrome trace-event JSON or streaming \
          JSONL, and profile where logical time went.")
    [ trace_record_cmd; trace_export_cmd; trace_report_cmd ]

(* ---------- chaos ---------- *)

let chaos_cmd =
  let messages_t =
    Arg.(
      value & opt int 60
      & info [ "messages"; "m" ] ~docv:"M" ~doc:"Message count.")
  in
  let internal_t =
    Arg.(
      value & opt float 0.0
      & info [ "internal" ] ~docv:"P" ~doc:"Internal-event probability.")
  in
  let loss_t =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:"Packet-loss probability ($(b,1.0) allowed: drop everything).")
  in
  let fault_t =
    Arg.(
      value & opt_all string []
      & info [ "fault"; "f" ] ~docv:"CLAUSE"
          ~doc:
            "One fault-plan clause; repeatable. Grammar: $(b,crash:P\\@T), \
             $(b,recover:P\\@T+D), $(b,partition:A,B\\@T1-T2), \
             $(b,dup:PROB), $(b,corrupt:PROB), $(b,spike:PROB*FACTOR).")
  in
  let plan_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "A whole fault plan as one string of $(b,;)-separated clauses \
             (combined with any $(b,--fault) clauses).")
  in
  let retransmit_t =
    Arg.(
      value & opt float 40.0
      & info [ "retransmit" ] ~docv:"T"
          ~doc:"Initial retransmission timeout (doubles per attempt).")
  in
  let max_retransmits_t =
    Arg.(
      value & opt int 60
      & info [ "max-retransmits" ] ~docv:"K"
          ~doc:"Attempts before a sender gives up on a rendezvous.")
  in
  let chaos_format_t =
    (* -f is taken by --fault here, so no short alias. *)
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Report as $(b,text) or $(b,json).")
  in
  let no_checksum_t =
    Arg.(
      value & flag
      & info [ "no-checksum" ]
          ~doc:
            "Disable the wire checksum: corrupted packets are accepted \
             instead of rejected, demonstrating how exactness degrades \
             (the lint verdict catches the divergence).")
  in
  let run seed topo messages internal loss fault_specs plan_spec retransmit
      max_retransmits no_checksum format metrics tracefile =
    check_loss loss;
    check_loss internal;
    let parse_clauses = function
      | Ok acc, spec -> (
          match Fault_plan.of_string spec with
          | Ok fs -> Ok (acc @ fs)
          | Error e -> Error e)
      | (Error _ as e), _ -> e
    in
    let plan =
      List.fold_left
        (fun acc s -> parse_clauses (acc, s))
        (Ok [])
        (Option.to_list plan_spec @ fault_specs)
    in
    let plan =
      match plan with
      | Ok p -> p
      | Error e ->
          prerr_endline ("synts chaos: " ^ e);
          exit 2
    in
    if metrics <> None then begin
      Telemetry.set_enabled true;
      Telemetry.reset ()
    end;
    if tracefile <> None then start_tracing ();
    let g = realize_topology seed topo in
    let n = Graph.n g in
    (match Fault_plan.validate ~n plan with
    | Ok () -> ()
    | Error e ->
        prerr_endline ("synts chaos: " ^ e);
        exit 2);
    if Fault_plan.has_churn plan then begin
      prerr_endline
        "synts chaos: the plan contains membership churn clauses \
         (join/leave/flap) — the packet-level chaos runner keeps a fixed \
         topology; run the plan under `synts churn` instead";
      exit 2
    end;
    let workload =
      Workload.random (Rng.create (seed + 1)) ~topology:g ~messages
        ~internal_prob:internal ()
    in
    let d = Decomposition.best g in
    let scripts = Synts_net.Script.of_trace workload in
    let injector = Injector.create ~seed plan in
    let o =
      Synts_net.Rendezvous.run ~seed ~loss ~retransmit ~max_retransmits
        ~faults:injector ~checksum:(not no_checksum) ~decomposition:d scripts
    in
    let delivered = Trace.message_count o.trace in
    let planned = Trace.message_count workload in
    let stamps = Option.value ~default:[||] o.timestamps in
    let oracle = Online.timestamp_trace d o.trace in
    let mismatches = ref 0 in
    Array.iteri
      (fun i v ->
        if i >= Array.length oracle || not (Vector.equal v oracle.(i)) then
          incr mismatches)
      stamps;
    let findings =
      Synts_lint.Sanitizer.check_trace d o.trace stamps
      @ List.map
          (fun kind ->
            Synts_lint.Rules.finding "fault/unobserved"
              Synts_lint.Finding.Global
              (Printf.sprintf
                 "plan declares %s faults but none fired during the run" kind))
          (Injector.unobserved injector)
    in
    if metrics <> None then Lint.record findings;
    (* Exit-code contract (doc/CLI.md): 0 clean; 1 exactness loss — the
       delivered stamps diverge from the offline oracle or a sanitizer
       rule fired at error severity; 2 plan parse/validation or usage
       errors (raised above, before the run); 3 any other error-severity
       finding. *)
    let exactness_lost =
      !mismatches > 0
      || List.exists
           (fun f ->
             f.Finding.severity = Finding.Error
             && String.length f.Finding.rule >= 4
             && String.sub f.Finding.rule 0 4 = "san/")
           findings
    in
    let code =
      if exactness_lost then 1 else if Finding.errors findings > 0 then 3 else 0
    in
    (match format with
    | `Json ->
        let breakdown_json =
          String.concat ","
            (List.map
               (fun (kind, consulted, fired) ->
                 Printf.sprintf
                   {|{"kind":%S,"consulted":%d,"fired":%d,"observed":%b}|}
                   kind consulted fired (fired > 0))
               (Injector.breakdown injector))
        in
        let procs_json ps =
          String.concat "," (List.map string_of_int ps)
        in
        Printf.printf
          {|{"topology":%S,"seed":%d,"plan":%S,"messages":{"planned":%d,"delivered":%d,"undelivered":%d},"packets":{"sent":%d,"lost":%d,"duplicated":%d,"corrupted":%d},"processes":{"gave_up":[%s],"crashed":[%s],"recovered":[%s],"deadlocked":[%s]},"faults":[%s],"makespan":%.1f,"stamps":{"total":%d,"oracle_matched":%d,"exact":%b},"lint":%s,"exactness_lost":%b,"exit_code":%d}|}
          (topo_to_string topo) seed
          (Fault_plan.to_string plan)
          planned delivered (planned - delivered) o.packets o.lost
          o.duplicated o.corrupted (procs_json o.gave_up)
          (procs_json o.crashed) (procs_json o.recovered)
          (procs_json o.deadlocked) breakdown_json o.makespan
          (Array.length stamps)
          (Array.length stamps - !mismatches)
          (!mismatches = 0) (Lint.to_json findings) exactness_lost code;
        print_newline ()
    | `Text ->
        let pp_procs = function
          | [] -> ""
          | ps ->
              Printf.sprintf " [%s]"
                (String.concat " " (List.map (Printf.sprintf "P%d") ps))
        in
        Format.printf "chaos %s  seed %d  plan: %s@." (topo_to_string topo)
          seed
          (if plan = [] then "(none)" else Fault_plan.to_string plan);
        Format.printf "messages  : %d delivered, %d undelivered (%d planned)@."
          delivered (planned - delivered) planned;
        Format.printf
          "packets   : %d sent, %d lost, %d duplicated, %d corrupted@."
          o.packets o.lost o.duplicated o.corrupted;
        Format.printf
          "processes : %d gave up%s, %d crashed%s, %d recovered%s, %d \
           deadlocked%s@."
          (List.length o.gave_up) (pp_procs o.gave_up) (List.length o.crashed)
          (pp_procs o.crashed)
          (List.length o.recovered)
          (pp_procs o.recovered)
          (List.length o.deadlocked)
          (pp_procs o.deadlocked);
        Format.printf "faults    : %s@."
          (match Injector.breakdown injector with
          | [] -> "(none injected)"
          | bk ->
              String.concat " "
                (List.map
                   (fun (k, consulted, fired) ->
                     Printf.sprintf "%s=%d/%d" k fired consulted)
                   bk));
        Format.printf "makespan  : %.1f@." o.makespan;
        Format.printf "stamps    : %d/%d match the offline oracle%s@."
          (Array.length stamps - !mismatches)
          (Array.length stamps)
          (if !mismatches = 0 then "" else " — EXACTNESS LOST");
        Format.printf "@.%a@." Lint.pp_report findings);
    (match metrics with
    | None -> ()
    | Some fmt ->
        print_newline ();
        dump_metrics fmt);
    Option.iter write_trace tracefile;
    exit code
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a workload under a declarative fault plan (crashes, \
          recoveries, partitions, duplication, corruption, delay spikes) \
          and report delivered/aborted/recovered tallies, timestamp \
          exactness against the offline oracle, and lint findings. \
          Deterministic from --seed. Exit codes: 0 clean, 1 exactness \
          lost, 2 plan parse/validation or usage error, 3 other \
          error-severity findings. Plans with membership churn clauses \
          are rejected (exit 2) — run those under $(b,synts churn).")
    Term.(
      const run $ seed_t $ topology_t $ messages_t $ internal_t $ loss_t
      $ fault_t $ plan_t $ retransmit_t $ max_retransmits_t $ no_checksum_t
      $ chaos_format_t $ metrics_t $ trace_t)

(* ---------- churn ---------- *)

let churn_cmd =
  let messages_t =
    Arg.(
      value & opt int 60
      & info [ "messages"; "m" ] ~docv:"M" ~doc:"Message count.")
  in
  let fault_t =
    Arg.(
      value & opt_all string []
      & info [ "fault"; "f" ] ~docv:"CLAUSE"
          ~doc:
            "One plan clause; repeatable. Beyond the $(b,synts chaos) \
             grammar this command executes the churn clauses: \
             $(b,join:P:U-V,..\\@T), $(b,join:P\\@T), $(b,leave:P\\@T), \
             $(b,flap:P\\@T+D), composable with $(b,crash:P\\@T), \
             $(b,recover:P\\@T+D) and $(b,partition:A,B\\@T1-T2).")
  in
  let plan_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "A whole plan as one string of $(b,;)-separated clauses \
             (combined with any $(b,--fault) clauses).")
  in
  let no_check_t =
    Arg.(
      value & flag
      & info [ "no-check" ]
          ~doc:
            "Skip the internal exactness check (translating every \
             delivered stamp into the final epoch and comparing all \
             ordered pairs against the tracked causal past).")
  in
  let churn_format_t =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Report as $(b,text) or $(b,json).")
  in
  let run seed topo messages fault_specs plan_spec no_check format metrics =
    let parse_clauses = function
      | Ok acc, spec -> (
          match Fault_plan.of_string spec with
          | Ok fs -> Ok (acc @ fs)
          | Error e -> Error e)
      | (Error _ as e), _ -> e
    in
    let plan =
      match
        List.fold_left
          (fun acc s -> parse_clauses (acc, s))
          (Ok [])
          (Option.to_list plan_spec @ fault_specs)
      with
      | Ok p -> p
      | Error e ->
          prerr_endline ("synts churn: " ^ e);
          exit 2
    in
    if metrics <> None then begin
      Telemetry.set_enabled true;
      Telemetry.reset ()
    end;
    let g = realize_topology seed topo in
    (match Fault_plan.validate ~n:(Graph.n g) plan with
    | Ok () -> ()
    | Error e ->
        prerr_endline ("synts churn: " ^ e);
        exit 2);
    let injector = Injector.create ~seed plan in
    let mem, o =
      match
        Churn.run ~seed ~faults:injector ~check:(not no_check) ~graph:g
          ~messages ()
      with
      | Ok r -> r
      | Error e ->
          prerr_endline ("synts churn: " ^ e);
          exit 3
    in
    let findings =
      Epoch_lint.audit mem
      @ List.map
          (fun kind ->
            Synts_lint.Rules.finding "fault/unobserved"
              Synts_lint.Finding.Global
              (Printf.sprintf
                 "plan declares %s faults but none fired during the run" kind))
          (Injector.unobserved injector)
    in
    if metrics <> None then Lint.record findings;
    (* Exit-code contract, shared with synts chaos (doc/CLI.md): 0
       clean; 1 exactness loss — a checked ordered pair's stamp order
       disagreed with causality across an epoch boundary; 2 plan
       parse/validation errors, including deltas the membership rejected
       at runtime; 3 other error-severity findings (epoch/* audit). *)
    let exactness_lost = o.Churn.mismatches > 0 in
    let code =
      if exactness_lost then 1
      else if o.Churn.delta_failures > 0 then 2
      else if Finding.errors findings > 0 then 3
      else 0
    in
    (match format with
    | `Json ->
        let breakdown_json =
          String.concat ","
            (List.map
               (fun (kind, consulted, fired) ->
                 Printf.sprintf
                   {|{"kind":%S,"consulted":%d,"fired":%d,"observed":%b}|}
                   kind consulted fired (fired > 0))
               (Injector.breakdown injector))
        in
        Printf.printf
          {|{"topology":%S,"seed":%d,"plan":%S,"messages":{"requested":%d,"delivered":%d,"skipped":%d,"blocked":%d},"epochs":{"final":%d,"width":%d,"deltas_applied":%d,"delta_failures":%d,"repairs":%d,"recomputes":%d,"live_components":%d,"frozen_components":%d},"frames":{"translated":%d,"view_syncs":%d},"processes":{"crashes":%d,"recoveries":%d},"faults":[%s],"exactness":{"checked":%b,"comparisons":%d,"mismatches":%d,"exact":%b},"lint":%s,"exactness_lost":%b,"exit_code":%d}|}
          (topo_to_string topo) seed
          (Fault_plan.to_string plan)
          messages o.Churn.delivered o.Churn.skipped o.Churn.blocked
          o.Churn.final_epoch o.Churn.final_width o.Churn.deltas_applied
          o.Churn.delta_failures (Membership.repairs mem)
          (Membership.recomputes mem)
          (Membership.live_components mem)
          (Membership.frozen_components mem)
          o.Churn.translated_frames o.Churn.view_syncs o.Churn.crashes
          o.Churn.recoveries breakdown_json (not no_check)
          o.Churn.comparisons o.Churn.mismatches (Churn.exact o)
          (Lint.to_json findings) exactness_lost code;
        print_newline ()
    | `Text ->
        Format.printf "churn %s  seed %d  plan: %s@." (topo_to_string topo)
          seed
          (if plan = [] then "(none)" else Fault_plan.to_string plan);
        Format.printf
          "messages  : %d delivered, %d skipped (no live channel), %d \
           blocked (partition) of %d requested@."
          o.Churn.delivered o.Churn.skipped o.Churn.blocked messages;
        Format.printf
          "epochs    : reached epoch %d (width %d), %d delta(s) applied, %d \
           rejected@."
          o.Churn.final_epoch o.Churn.final_width o.Churn.deltas_applied
          o.Churn.delta_failures;
        Format.printf
          "membership: %d live + %d frozen component(s), %d incremental \
           repair(s), %d full recompute(s)@."
          (Membership.live_components mem)
          (Membership.frozen_components mem)
          (Membership.repairs mem) (Membership.recomputes mem);
        Format.printf
          "frames    : %d stale-epoch frame(s) translated on receipt, %d \
           view catch-up(s)@."
          o.Churn.translated_frames o.Churn.view_syncs;
        Format.printf "processes : %d crash(es), %d recovery(ies)@."
          o.Churn.crashes o.Churn.recoveries;
        Format.printf "faults    : %s@."
          (match Injector.breakdown injector with
          | [] -> "(none injected)"
          | bk ->
              String.concat " "
                (List.map
                   (fun (k, consulted, fired) ->
                     Printf.sprintf "%s=%d/%d" k fired consulted)
                   bk));
        (if no_check then
           Format.printf "exactness : (unchecked — --no-check)@."
         else
           Format.printf
             "exactness : %d ordered pair(s) checked across epochs, %d \
              mismatch(es)%s@."
             o.Churn.comparisons o.Churn.mismatches
             (if o.Churn.mismatches = 0 then "" else " — EXACTNESS LOST"));
        Format.printf "@.%a@." Lint.pp_report findings);
    (match metrics with
    | None -> ()
    | Some fmt ->
        print_newline ();
        dump_metrics fmt);
    exit code
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Run the Figure 5 protocol under membership churn: join/leave/flap \
          clauses open new epochs (incremental decomposition repair, full \
          recompute only past the min(beta(G), N-2) clamp), stamps travel \
          as epoch-tagged frames and stale frames are translated through \
          the remap chain on receipt; composable with crashes, recoveries \
          and partitions from the same plan grammar. The run is audited by \
          the epoch/* lint rules and (unless --no-check) checked for \
          cross-epoch exactness against the tracked causal past. Exit \
          codes: 0 clean, 1 exactness lost, 2 plan parse/validation error \
          (including deltas rejected at runtime), 3 other error-severity \
          findings. Deterministic from --seed.")
    Term.(
      const run $ seed_t $ topology_t $ messages_t $ fault_t $ plan_t
      $ no_check_t $ churn_format_t $ metrics_t)

let bench_diff_cmd =
  let module Bench_io = Synts_bench_io.Bench_io in
  let old_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD"
          ~doc:"Baseline bench JSON (e.g. the committed BENCH_baseline.json).")
  in
  let new_t =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW"
          ~doc:"Fresh bench JSON (from $(b,bench/main.exe --json FILE)).")
  in
  let threshold_t =
    Arg.(
      value & opt float 0.25
      & info [ "threshold"; "t" ] ~docv:"FRAC"
          ~doc:
            "Relative change that counts as a regression/improvement \
             (0.25 = 25%).")
  in
  let run old_path new_path threshold =
    match (Bench_io.load old_path, Bench_io.load new_path) with
    | Error e, _ | _, Error e ->
        Printf.eprintf "bench-diff: %s\n" e;
        exit 2
    | Ok old_run, Ok new_run ->
        let d = Bench_io.diff ~threshold old_run new_run in
        print_string (Bench_io.render_diff ~threshold ~old_run ~new_run d);
        if Bench_io.has_regression d then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench baseline files (written by $(b,bench/main.exe \
          --json)) and exit non-zero if any test regressed beyond the \
          threshold in time or allocation.")
    Term.(const run $ old_t $ new_t $ threshold_t)

let () =
  let doc =
    "Timestamping messages in synchronous computations (Garg & \
     Skawratananond, ICDCS 2002)"
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "synts" ~version:"1.0.0" ~doc)
          [
            figures_cmd; experiments_cmd; decompose_cmd; simulate_cmd;
            analyze_cmd; monitor_cmd; offline_cmd; serve_cmd; load_cmd;
            top_cmd; protocol_cmd;
            verify_cmd; lint_cmd; model_cmd; metrics_cmd; trace_cmd; chaos_cmd;
            churn_cmd; bench_diff_cmd;
          ]))
